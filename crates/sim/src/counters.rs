//! PMU-style event counters.
//!
//! These are the free-running hardware counters the paper reads through
//! `perf`-like interfaces: retired ops, cache misses at each level, TLB
//! misses / page-table walks, A-bit set events, and cycle counts. They are
//! the raw material both for Fig. 2 (ratio of PTW events to cache-miss
//! events) and for TMP's HWPC gating (§III-B-4).

/// Events counted by one core's PMU (plus shared-LLC events attributed to
/// the requesting core, as modern uncore PMUs do).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounts {
    /// Micro-ops retired.
    pub retired_ops: u64,
    /// Demand loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// LLC misses (accesses served from a memory tier).
    pub llc_misses: u64,
    /// LLC misses served by tier 1.
    pub tier1_accesses: u64,
    /// LLC misses served by tier 2.
    pub tier2_accesses: u64,
    /// Of the tier-2 accesses, how many were stores (NVM write-endurance
    /// and write-energy proxy).
    pub tier2_stores: u64,
    /// Dirty lines written back from the LLC into tier 2 (the dominant
    /// source of NVM writes on write-back hierarchies).
    pub tier2_writebacks: u64,
    /// First-level DTLB misses.
    pub dtlb_l1_misses: u64,
    /// Second-level TLB misses = hardware page-table walks.
    pub ptw_walks: u64,
    /// Walks that found the A bit clear and set it (the PTW events of
    /// Fig. 2 — each one is a potential A-bit profiler observation).
    pub ptw_abit_sets: u64,
    /// D-bit write-backs forced by stores through clean translations.
    pub dirty_writebacks: u64,
    /// Minor page faults (first touch) taken.
    pub page_faults: u64,
    /// Protection faults taken (BadgerTrap / emulation traps).
    pub protection_faults: u64,
    /// Core cycles, including memory stalls.
    pub cycles: u64,
    /// Extra cycles charged to profiling activity (interrupts, scans,
    /// shootdowns). Kept separate so overhead percentages can be reported
    /// the way the paper does (§VI-B).
    pub profiling_cycles: u64,
}

impl EventCounts {
    /// Accumulate another counter snapshot into this one.
    pub fn add(&mut self, other: &EventCounts) {
        self.retired_ops += other.retired_ops;
        self.loads += other.loads;
        self.stores += other.stores;
        self.l1d_misses += other.l1d_misses;
        self.l2_misses += other.l2_misses;
        self.llc_misses += other.llc_misses;
        self.tier1_accesses += other.tier1_accesses;
        self.tier2_accesses += other.tier2_accesses;
        self.tier2_stores += other.tier2_stores;
        self.tier2_writebacks += other.tier2_writebacks;
        self.dtlb_l1_misses += other.dtlb_l1_misses;
        self.ptw_walks += other.ptw_walks;
        self.ptw_abit_sets += other.ptw_abit_sets;
        self.dirty_writebacks += other.dirty_writebacks;
        self.page_faults += other.page_faults;
        self.protection_faults += other.protection_faults;
        self.cycles += other.cycles;
        self.profiling_cycles += other.profiling_cycles;
    }

    /// Difference (`self - earlier`), for interval readings.
    pub fn delta_since(&self, earlier: &EventCounts) -> EventCounts {
        EventCounts {
            retired_ops: self.retired_ops - earlier.retired_ops,
            loads: self.loads - earlier.loads,
            stores: self.stores - earlier.stores,
            l1d_misses: self.l1d_misses - earlier.l1d_misses,
            l2_misses: self.l2_misses - earlier.l2_misses,
            llc_misses: self.llc_misses - earlier.llc_misses,
            tier1_accesses: self.tier1_accesses - earlier.tier1_accesses,
            tier2_accesses: self.tier2_accesses - earlier.tier2_accesses,
            tier2_stores: self.tier2_stores - earlier.tier2_stores,
            tier2_writebacks: self.tier2_writebacks - earlier.tier2_writebacks,
            dtlb_l1_misses: self.dtlb_l1_misses - earlier.dtlb_l1_misses,
            ptw_walks: self.ptw_walks - earlier.ptw_walks,
            ptw_abit_sets: self.ptw_abit_sets - earlier.ptw_abit_sets,
            dirty_writebacks: self.dirty_writebacks - earlier.dirty_writebacks,
            page_faults: self.page_faults - earlier.page_faults,
            protection_faults: self.protection_faults - earlier.protection_faults,
            cycles: self.cycles - earlier.cycles,
            profiling_cycles: self.profiling_cycles - earlier.profiling_cycles,
        }
    }

    /// LLC misses per kilo-op: TMP's trace-gating signal.
    pub fn llc_mpko(&self) -> f64 {
        if self.retired_ops == 0 {
            0.0
        } else {
            self.llc_misses as f64 * 1000.0 / self.retired_ops as f64
        }
    }

    /// Page walks per kilo-op: TMP's A-bit-gating signal.
    pub fn ptw_pko(&self) -> f64 {
        if self.retired_ops == 0 {
            0.0
        } else {
            self.ptw_walks as f64 * 1000.0 / self.retired_ops as f64
        }
    }

    /// Fig. 2's quantity: PTW A-bit-setting events relative to data-cache
    /// (LLC) miss events.
    pub fn ptw_to_cache_miss_ratio(&self) -> f64 {
        if self.llc_misses == 0 {
            return 0.0;
        }
        self.ptw_abit_sets as f64 / self.llc_misses as f64
    }

    /// Tier-1 hitrate among memory accesses (the key TMA metric of Fig. 6).
    pub fn tier1_hitrate(&self) -> f64 {
        let total = self.tier1_accesses + self.tier2_accesses;
        if total == 0 {
            0.0
        } else {
            self.tier1_accesses as f64 / total as f64
        }
    }

    /// Fraction of cycles spent on profiling work (§VI-B overhead metric).
    pub fn profiling_overhead(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.profiling_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventCounts {
        EventCounts {
            retired_ops: 1000,
            loads: 400,
            stores: 100,
            l1d_misses: 50,
            l2_misses: 25,
            llc_misses: 10,
            tier1_accesses: 8,
            tier2_accesses: 2,
            tier2_stores: 1,
            tier2_writebacks: 1,
            dtlb_l1_misses: 20,
            ptw_walks: 5,
            ptw_abit_sets: 4,
            dirty_writebacks: 1,
            page_faults: 2,
            protection_faults: 0,
            cycles: 5000,
            profiling_cycles: 50,
        }
    }

    #[test]
    fn add_then_delta_roundtrip() {
        let a = sample();
        let mut b = a;
        b.add(&a);
        assert_eq!(b.delta_since(&a), a);
    }

    #[test]
    fn rates() {
        let c = sample();
        assert!((c.llc_mpko() - 10.0).abs() < 1e-12);
        assert!((c.ptw_pko() - 5.0).abs() < 1e-12);
        assert!((c.tier1_hitrate() - 0.8).abs() < 1e-12);
        assert!((c.profiling_overhead() - 0.01).abs() < 1e-12);
        assert!((c.ptw_to_cache_miss_ratio() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn rates_are_zero_safe() {
        let z = EventCounts::default();
        assert_eq!(z.llc_mpko(), 0.0);
        assert_eq!(z.ptw_pko(), 0.0);
        assert_eq!(z.tier1_hitrate(), 0.0);
        assert_eq!(z.profiling_overhead(), 0.0);
        assert_eq!(z.ptw_to_cache_miss_ratio(), 0.0);
    }
}
