//! The simulated multi-core machine.
//!
//! [`Machine`] glues the substrates together — per-core private caches and
//! TLBs, a shared LLC, per-process radix page tables walked by a hardware
//! page-table walker, tiered physical memory, per-core trace-sampling and
//! PML engines, PMU counters, and an omniscient ground-truth recorder.
//!
//! The execution model is op-granular: callers feed [`WorkOp`]s to
//! [`Machine::exec_op`] (usually through `runner::Runner`, which handles
//! scheduling), and the machine plays each op through translation and the
//! cache hierarchy, charging a cycle cost assembled from [`LatencyConfig`].
//! Everything the paper's profiling mechanisms observe — A/D bit updates,
//! TLB fills, LLC miss data sources, sample records — is produced here as a
//! side effect of ordinary execution, never synthesized separately. That is
//! the point of the substrate: profilers can only be as right as what the
//! hardware exposes.

use crate::addr::{phys_addr, Pfn, PhysAddr, VirtAddr, Vpn, PAGE_SIZE};
use crate::batch::TranslateMemo;
use crate::cache::{Cache, CacheLevel, PrivateCaches};
use crate::counters::EventCounts;
use crate::frame::{FrameAllocator, OutOfMemory};
use crate::keymap::KeyMap;
use crate::pagedesc::{PageDescTable, PageKey};
use crate::pagetable::PageTable;
use crate::pml::PmlEngine;
use crate::pte::{bits, Pte};
use crate::stats::{EpochTruth, GroundTruth};
use crate::tier::{Tier, TieredMemory};
use crate::tlb::{Pid, Tlb, TlbEntry, TlbHit, TlbLevel};
use crate::trace_engine::{TagOutcome, TraceEngine, TraceMode, TraceSample};
use tmprof_obs::journal::EventKind as ObsEvent;
use tmprof_obs::metrics::Metric as ObsMetric;

/// Cycle costs of the microarchitectural events the machine charges.
///
/// Values approximate a ~4 GHz Zen2-class core; what matters for the
/// reproduction is their *relative* magnitudes (LLC miss >> L2 hit, fault >>
/// miss, IPI >> walk), which set the same trade-offs the paper measures.
#[derive(Clone, Copy, Debug)]
pub struct LatencyConfig {
    /// Base cost of any retired op.
    pub base_op: u64,
    /// Extra stall for an L1D hit (pipelined loads: none).
    pub l1_hit: u64,
    /// Extra stall for an L2 hit.
    pub l2_hit: u64,
    /// Extra stall for an LLC hit.
    pub llc_hit: u64,
    /// Hardware page-table walk.
    pub ptw: u64,
    /// Minor (first-touch) page fault.
    pub minor_fault: u64,
    /// Protection fault delivered to software (BadgerTrap/emulation traps).
    pub protection_fault: u64,
    /// D-bit write-back forced by a store through a clean TLB entry.
    pub dirty_writeback: u64,
    /// Per-core cost of receiving a TLB-shootdown IPI.
    pub shootdown_ipi: u64,
    /// Cost, per sample record, of the profiler's collection interrupt.
    pub sample_interrupt: u64,
    /// Software cost of visiting one PTE during an A-bit scan.
    pub pte_visit: u64,
}

impl Default for LatencyConfig {
    fn default() -> Self {
        Self {
            base_op: 1,
            l1_hit: 0,
            l2_hit: 12,
            llc_hit: 38,
            ptw: 100,
            minor_fault: 2500,
            protection_fault: 4000,
            dirty_writeback: 30,
            shootdown_ipi: 4000,
            sample_interrupt: 1200,
            pte_visit: 12,
        }
    }
}

/// Cache and TLB geometry for one build of the machine.
#[derive(Clone, Copy, Debug)]
pub struct CacheProfile {
    pub l1_bytes: u64,
    pub l1_ways: usize,
    pub l2_bytes: u64,
    pub l2_ways: usize,
    pub llc_bytes: u64,
    pub llc_ways: usize,
    pub tlb_l1_entries: usize,
    pub tlb_l2_sets: usize,
    pub tlb_l2_ways: usize,
}

impl CacheProfile {
    /// Full-size Ryzen 5 3600X-like geometry (the paper's testbed).
    pub fn zen2() -> Self {
        Self {
            l1_bytes: 32 << 10,
            l1_ways: 8,
            l2_bytes: 512 << 10,
            l2_ways: 8,
            llc_bytes: 32 << 20,
            llc_ways: 16,
            tlb_l1_entries: 64,
            tlb_l2_sets: 128,
            tlb_l2_ways: 16,
        }
    }

    /// Geometry shrunk by `factor` (power of two) for scaled-down workload
    /// footprints, keeping set/way shape. TLBs shrink with the square root
    /// of the factor (their reach scales with pages, not bytes).
    pub fn scaled_down(factor: u64) -> Self {
        assert!(factor.is_power_of_two() && factor >= 1);
        let full = Self::zen2();
        let tlb_factor = (1u64 << (factor.trailing_zeros() / 2)).max(1) as usize;
        Self {
            l1_bytes: (full.l1_bytes / factor).max(4 << 10),
            l1_ways: full.l1_ways,
            l2_bytes: (full.l2_bytes / factor).max(16 << 10),
            l2_ways: full.l2_ways,
            llc_bytes: (full.llc_bytes / factor).max(128 << 10),
            llc_ways: full.llc_ways,
            tlb_l1_entries: (full.tlb_l1_entries / tlb_factor).max(16),
            tlb_l2_sets: (full.tlb_l2_sets / tlb_factor).max(8),
            tlb_l2_ways: full.tlb_l2_ways,
        }
    }
}

/// Machine construction parameters.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Number of cores (the paper's testbed has 6).
    pub cores: usize,
    /// Cache/TLB geometry.
    pub caches: CacheProfile,
    /// Cycle-cost table.
    pub latency: LatencyConfig,
    /// Physical memory layout.
    pub memory: TieredMemory,
    /// Trace-engine mode installed at reset.
    pub trace_mode: TraceMode,
}

impl MachineConfig {
    /// The paper's testbed, full size: 6 cores, 64 GiB in tier 1 only.
    pub fn paper_testbed() -> Self {
        Self {
            cores: 6,
            caches: CacheProfile::zen2(),
            latency: LatencyConfig::default(),
            memory: TieredMemory::with_frames(16 << 20, 0), // 64 GiB DRAM
            trace_mode: TraceMode::IbsOp { period: 262_144 },
        }
    }

    /// A scaled-down machine suitable for fast experiments: smaller caches,
    /// `t1_frames`/`t2_frames` of tiered memory, IBS period `period`. The
    /// `TMPROF_TOPOLOGY` knob reshapes the layout (same totals, slow
    /// frames split across the named slow tiers); unset means the default
    /// two-tier DRAM+NVM machine.
    pub fn scaled(cores: usize, t1_frames: u64, t2_frames: u64, period: u64) -> Self {
        Self::scaled_topology(
            cores,
            TieredMemory::scaled_from_env(t1_frames, t2_frames),
            period,
        )
    }

    /// A scaled-down machine over an arbitrary N-tier memory layout.
    pub fn scaled_topology(cores: usize, memory: TieredMemory, period: u64) -> Self {
        Self {
            cores,
            caches: CacheProfile::scaled_down(16),
            latency: LatencyConfig::default(),
            memory,
            trace_mode: TraceMode::IbsOp { period },
        }
    }
}

/// One unit of work offered to a core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WorkOp {
    /// A demand load or store to a virtual address. `site` is a synthetic
    /// instruction pointer identifying the issuing code location.
    Mem {
        va: VirtAddr,
        store: bool,
        site: u32,
    },
    /// A non-memory op (ALU work): contributes to retired-op counts and
    /// IBS tagging denominators only.
    Compute,
}

/// Everything that happened while executing one op (test/emulation hook).
#[derive(Clone, Copy, Debug, Default)]
pub struct ExecOutcome {
    /// Serving level for a memory op.
    pub source: Option<CacheLevel>,
    /// Serving tier when `source == Memory`.
    pub tier: Option<Tier>,
    /// Translation outcome for a memory op.
    pub tlb: Option<TlbHit>,
    /// Cycles charged (base + stalls + faults).
    pub cycles: u64,
    /// A minor (first-touch) fault was taken.
    pub minor_fault: bool,
    /// A protection fault was delivered to the fault policy.
    pub protection_fault: bool,
    /// The trace engine selected this op.
    pub sampled: bool,
}

/// One memory access as seen by the post-translation pipeline
/// ([`Machine::finish_mem`]), shared by the reference and batched paths.
#[derive(Clone, Copy)]
pub(crate) struct MemAccess {
    pub(crate) core: usize,
    pub(crate) pid: Pid,
    pub(crate) va: VirtAddr,
    pub(crate) store: bool,
    pub(crate) site: u32,
}

/// A protection fault delivered to the installed [`FaultPolicy`].
#[derive(Clone, Copy, Debug)]
pub struct PoisonFault {
    pub core: u32,
    pub pid: Pid,
    pub vpn: Vpn,
    pub pte: Pte,
    pub is_store: bool,
    pub epoch: u32,
}

/// What the fault handler wants done before the access retries.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultAction {
    /// Clear the POISON bit before retrying the walk.
    pub unpoison: bool,
    /// Clear the PROT_NONE bit before retrying the walk.
    pub unprotect: bool,
    /// Re-set POISON after the TLB has been filled (BadgerTrap's repoison:
    /// the cached translation keeps working; the *next* walk faults again).
    pub repoison: bool,
    /// Extra stall cycles injected by the handler (latency emulation).
    pub extra_cycles: u64,
}

/// Software fault handler for poisoned / prot-none pages. Implemented by
/// BadgerTrap (profilers crate) and the NVM latency emulator (emul crate).
pub trait FaultPolicy: Send {
    /// Decide how to resolve `fault`.
    fn handle(&mut self, fault: &PoisonFault) -> FaultAction;
}

pub(crate) struct Core {
    pub(crate) caches: PrivateCaches,
    pub(crate) tlb: Tlb,
    pub(crate) counts: EventCounts,
    pub(crate) trace: TraceEngine,
    pub(crate) pml: PmlEngine,
    /// Software translation memo for the batched fast path (`batch.rs`).
    pub(crate) memo: TranslateMemo,
}

/// One simulated process: an address space plus usage accounting.
pub struct Process {
    pub pid: Pid,
    pub page_table: PageTable,
    /// Ops this process has retired (daemon CPU-share signal).
    pub ops_executed: u64,
    /// Transparent huge pages: first-touch faults try to allocate and map
    /// 2 MiB regions (falling back to 4 KiB when no contiguous run is
    /// free), like the kernel's THP for large anonymous mappings.
    pub thp: bool,
}

/// Errors from page-migration mechanics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MigrateError {
    /// The virtual page is not mapped.
    NotMapped,
    /// The page is part of a 2 MiB huge mapping; the mover does not split
    /// or relocate huge pages (matching common kernel policy).
    HugePage,
    /// The page already resides in the destination tier.
    AlreadyThere,
    /// The destination tier has no free frames.
    NoFrames(OutOfMemory),
}

impl std::fmt::Display for MigrateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MigrateError::NotMapped => write!(f, "page not mapped"),
            MigrateError::HugePage => write!(f, "page backed by a huge mapping"),
            MigrateError::AlreadyThere => write!(f, "page already in destination tier"),
            MigrateError::NoFrames(oom) => write!(f, "migration failed: {oom}"),
        }
    }
}

impl std::error::Error for MigrateError {}

/// The simulated machine. See the module docs for the execution model.
pub struct Machine {
    cfg: MachineConfig,
    pub(crate) cores: Vec<Core>,
    llc: Cache,
    /// Processes sorted by PID; `pid_index` maps PID -> position. A dense
    /// vec + fast-hash index keeps the per-op process lookup off the
    /// `BTreeMap` pointer-chase that used to dominate `exec_op`.
    pub(crate) processes: Vec<Process>,
    pid_index: KeyMap<Pid, usize>,
    frames: FrameAllocator,
    descs: PageDescTable,
    pub(crate) truth: GroundTruth,
    epoch: u32,
    fault_policy: Option<Box<dyn FaultPolicy>>,
    /// Packed [`PageKey`]s in the order they were first touched (minor
    /// faults). Feeds the first-come-first-allocate baseline evaluation.
    first_touch_log: Vec<u64>,
    /// When enabled, every LLC miss served from a non-fastest tier appends
    /// its frame here — the access stream a device-side hot-page tracker
    /// (NeoMem-style CXL controller counter) would observe. Off by default;
    /// drained per epoch by the devsketch profiler.
    device_stream: bool,
    device_log: Vec<Pfn>,
    /// Bytes each tier served this epoch (line fills + writebacks), indexed
    /// by tier. Feeds the per-tier bandwidth budget: accesses past a tier's
    /// `epoch_bytes_budget` pay the saturation surcharge. Reset at every
    /// epoch horizon.
    tier_epoch_bytes: Vec<u64>,
}

impl Machine {
    /// Build a machine from `cfg`, with all memory free and no processes.
    pub fn new(cfg: MachineConfig) -> Self {
        assert!(cfg.cores > 0, "machine needs at least one core");
        let cores = (0..cfg.cores)
            .map(|_| Core {
                caches: PrivateCaches {
                    l1d: Cache::new("L1D", cfg.caches.l1_bytes, cfg.caches.l1_ways),
                    l2: Cache::new("L2", cfg.caches.l2_bytes, cfg.caches.l2_ways),
                },
                tlb: Tlb::new(
                    TlbLevel::new(1, cfg.caches.tlb_l1_entries),
                    TlbLevel::new(cfg.caches.tlb_l2_sets, cfg.caches.tlb_l2_ways),
                ),
                counts: EventCounts::default(),
                trace: TraceEngine::new(cfg.trace_mode),
                pml: PmlEngine::new(),
                memo: TranslateMemo::new(),
            })
            .collect();
        let llc = Cache::new("LLC", cfg.caches.llc_bytes, cfg.caches.llc_ways);
        let frames = FrameAllocator::new(&cfg.memory);
        let descs = PageDescTable::new(cfg.memory.total_frames());
        let tier_epoch_bytes = vec![0; cfg.memory.num_tiers()];
        Self {
            cfg,
            cores,
            llc,
            processes: Vec::new(),
            pid_index: KeyMap::default(),
            frames,
            descs,
            truth: GroundTruth::new(),
            epoch: 0,
            fault_policy: None,
            first_touch_log: Vec::new(),
            device_stream: false,
            device_log: Vec::new(),
            tier_epoch_bytes,
        }
    }

    /// Enable or disable recording of the device-side slow-tier access
    /// stream (see [`Self::take_device_accesses`]). Disabled by default —
    /// the default paths pay nothing for it.
    pub fn set_device_stream(&mut self, enabled: bool) {
        self.device_stream = enabled;
        if !enabled {
            self.device_log = Vec::new();
        }
    }

    /// Drain the frames of slow-tier memory accesses observed since the
    /// last drain, in access order. Empty unless
    /// [`Self::set_device_stream`] enabled recording.
    pub fn take_device_accesses(&mut self) -> Vec<Pfn> {
        std::mem::take(&mut self.device_log)
    }

    /// Machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.cfg.cores
    }

    /// Physical memory layout.
    pub fn memory(&self) -> &TieredMemory {
        &self.cfg.memory
    }

    /// Bytes `tier` has served so far this epoch (demand line fills plus
    /// writebacks) — the meter the per-tier `epoch_bytes_budget` compares
    /// against. Resets at every epoch horizon.
    pub fn tier_epoch_bytes(&self, tier: Tier) -> u64 {
        self.tier_epoch_bytes
            .get(tier.index())
            .copied()
            .unwrap_or(0)
    }

    /// Current epoch index.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// The machine's aggregate sim clock: total cycles across all cores.
    /// Deterministic for identical runs; used to stamp journal events.
    #[inline]
    pub fn clock(&self) -> u64 {
        self.cores.iter().map(|c| c.counts.cycles).sum()
    }

    /// Install (or remove) the protection-fault handler.
    pub fn set_fault_policy(&mut self, policy: Option<Box<dyn FaultPolicy>>) {
        self.fault_policy = policy;
    }

    /// Register a new (empty) process.
    ///
    /// # Panics
    /// If the PID is already registered.
    pub fn add_process(&mut self, pid: Pid) {
        assert!(
            !self.pid_index.contains_key(&pid),
            "pid {pid} already exists"
        );
        let pos = self.processes.partition_point(|p| p.pid < pid);
        self.processes.insert(
            pos,
            Process {
                pid,
                page_table: PageTable::new(),
                ops_executed: 0,
                thp: false,
            },
        );
        // Reindex the (rare) insertion and everything it shifted.
        for (i, p) in self.processes.iter().enumerate().skip(pos) {
            self.pid_index.insert(p.pid, i);
        }
    }

    /// Position of `pid` in the dense process table.
    #[inline]
    pub(crate) fn proc_idx(&self, pid: Pid) -> usize {
        // tmprof-lint: allow(panic-reachability) — callers pass PIDs they registered via add_process; an unknown PID is a harness bug, not a runtime condition
        *self.pid_index.get(&pid).expect("unknown pid")
    }

    /// Enable or disable transparent huge pages for a process. Affects
    /// only future first-touch faults.
    pub fn set_thp(&mut self, pid: Pid, enabled: bool) {
        let idx = self.proc_idx(pid);
        self.processes[idx].thp = enabled;
    }

    /// Registered PIDs, ascending. Borrows instead of allocating; collect
    /// when a snapshot must outlive machine mutation.
    pub fn pids(&self) -> impl Iterator<Item = Pid> + '_ {
        self.processes.iter().map(|p| p.pid)
    }

    /// Number of registered processes.
    pub fn num_processes(&self) -> usize {
        self.processes.len()
    }

    /// Access a process.
    pub fn process(&self, pid: Pid) -> Option<&Process> {
        self.pid_index.get(&pid).map(|&i| &self.processes[i])
    }

    /// Split borrows for a software PTE scan over `pid`: page table,
    /// descriptor table, and the current epoch. This is the entry point the
    /// A-bit driver uses (`mm_walk` + `phys_to_page`).
    pub fn scan_parts(&mut self, pid: Pid) -> Option<(&mut PageTable, &mut PageDescTable, u32)> {
        // The caller may clear A bits or poison PTEs through the returned
        // borrows; drop the batched fast path's hints.
        self.invalidate_memos();
        let epoch = self.epoch;
        let idx = *self.pid_index.get(&pid)?;
        let proc = &mut self.processes[idx];
        Some((&mut proc.page_table, &mut self.descs, epoch))
    }

    /// The per-core trace engine (driver MSR access).
    // tmprof-lint: allow(panic-reachability) — core is a valid core id by caller contract (bounded by cores.len())
    pub fn trace_engine_mut(&mut self, core: usize) -> &mut TraceEngine {
        &mut self.cores[core].trace
    }

    /// The per-core PML engine.
    // tmprof-lint: allow(panic-reachability) — core is a valid core id by caller contract (bounded by cores.len())
    pub fn pml_engine_mut(&mut self, core: usize) -> &mut PmlEngine {
        &mut self.cores[core].pml
    }

    /// Per-core PMU counters.
    // tmprof-lint: allow(panic-reachability) — core is a valid core id by caller contract (bounded by cores.len())
    pub fn counts(&self, core: usize) -> &EventCounts {
        &self.cores[core].counts
    }

    /// Per-core counters, core order, without the aggregate copy. Callers
    /// that only need one or two fields fold this instead of paying
    /// [`Machine::aggregate_counts`].
    pub fn counts_iter(&self) -> impl Iterator<Item = &EventCounts> {
        self.cores.iter().map(|c| &c.counts)
    }

    /// Sum of all cores' counters.
    pub fn aggregate_counts(&self) -> EventCounts {
        let mut total = EventCounts::default();
        for c in self.counts_iter() {
            total.add(c);
        }
        total
    }

    /// The machine-wide page-descriptor table.
    pub fn descs(&self) -> &PageDescTable {
        &self.descs
    }

    /// Mutable descriptor table (drivers accumulate stats here).
    pub fn descs_mut(&mut self) -> &mut PageDescTable {
        &mut self.descs
    }

    /// The omniscient recorder (Oracle / evaluation only — not visible to
    /// profilers).
    pub fn truth(&self) -> &GroundTruth {
        &self.truth
    }

    /// Frame allocator (placement inspection).
    pub fn frames(&self) -> &FrameAllocator {
        &self.frames
    }

    /// Close the current epoch: bump the epoch index and return the epoch's
    /// ground truth.
    pub fn advance_epoch(&mut self) -> EpochTruth {
        self.invalidate_memos();
        // The bandwidth window is per epoch: every tier's byte meter
        // restarts at the horizon.
        for b in &mut self.tier_epoch_bytes {
            *b = 0;
        }
        let clock = self.clock();
        tmprof_obs::metrics::inc(ObsMetric::SimEpochs);
        tmprof_obs::journal::record(ObsEvent::EpochEnd, clock, self.epoch, 0, 0);
        self.epoch += 1;
        tmprof_obs::journal::record(ObsEvent::EpochStart, clock, self.epoch, 0, 0);
        self.truth.take_epoch()
    }

    /// Drop every core's translation-memo hints (O(1) per core). The memo
    /// is verified on use, so this is hygiene, not correctness: it stops
    /// the fast path from probing hints that events below have made dead.
    fn invalidate_memos(&mut self) {
        for core in &mut self.cores {
            core.memo.clear();
        }
    }

    /// Charge profiling work to a core's clock (scan costs, drain interrupts).
    // tmprof-lint: allow(panic-reachability) — core is a valid core id by caller contract (bounded by cores.len())
    pub fn charge_profiling(&mut self, core: usize, cycles: u64) {
        let c = &mut self.cores[core];
        c.counts.cycles += cycles;
        c.counts.profiling_cycles += cycles;
    }

    /// TLB shootdown for a batch of pages of one process: invalidates the
    /// translations on every core and charges each core one IPI, optionally
    /// booked as profiling overhead. Returns total cycles charged.
    pub fn shootdown(&mut self, pid: Pid, vpns: &[Vpn], as_profiling: bool) -> u64 {
        if vpns.is_empty() {
            return 0;
        }
        let ipi = self.cfg.latency.shootdown_ipi;
        let mut charged = 0;
        for core in &mut self.cores {
            core.memo.clear();
            for &vpn in vpns {
                core.tlb.invalidate_page(pid, vpn);
            }
            core.counts.cycles += ipi;
            if as_profiling {
                core.counts.profiling_cycles += ipi;
            }
            charged += ipi;
        }
        tmprof_obs::metrics::inc(ObsMetric::SimShootdowns);
        tmprof_obs::metrics::add(ObsMetric::SimShootdownPages, vpns.len() as u64);
        tmprof_obs::journal::record(
            ObsEvent::TlbShootdown,
            self.clock(),
            self.epoch,
            vpns.len() as u64,
            as_profiling as u64,
        );
        charged
    }

    /// Invalidate translations on every core WITHOUT charging IPI costs.
    ///
    /// Used by evaluation plumbing (e.g. the NVM latency emulator's
    /// periodic re-protection pass) whose own cost must not perturb the
    /// runtimes being compared.
    pub fn shootdown_silent(&mut self, pid: Pid, vpns: &[Vpn]) {
        for core in &mut self.cores {
            core.memo.clear();
            for &vpn in vpns {
                core.tlb.invalidate_page(pid, vpn);
            }
        }
    }

    /// Page-migration mechanics: move (`pid`, `vpn`) into `dest` tier.
    ///
    /// Updates the PTE, moves descriptor state, scrubs stale cache lines
    /// for both frames, invalidates the page's (now dangling) translations
    /// on every core, and returns `(old_pfn, new_pfn)`. The invalidation
    /// is a *correctness* action and is modelled free (the kernel's
    /// migration entry + local flush); the cost of the batched IPI
    /// broadcast — the paper's one-shootdown-per-epoch design (§IV step 2,
    /// reason 1) — is charged by the page mover via [`Machine::shootdown`]
    /// once per batch.
    pub fn migrate_page(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        dest: Tier,
    ) -> Result<(Pfn, Pfn), MigrateError> {
        let layout = self.cfg.memory.clone();
        let idx = *self.pid_index.get(&pid).ok_or(MigrateError::NotMapped)?;
        let proc = &mut self.processes[idx];
        let pte_ref = proc
            .page_table
            .entry_mut(vpn)
            .filter(|p| p.present())
            .ok_or(MigrateError::NotMapped)?;
        if pte_ref.huge() {
            return Err(MigrateError::HugePage);
        }
        let old_pfn = pte_ref.pfn();
        if layout.tier_of(old_pfn) == dest {
            return Err(MigrateError::AlreadyThere);
        }
        let new_pfn = self.frames.alloc_in(dest).map_err(MigrateError::NoFrames)?;
        *pte_ref = pte_ref.with_pfn(new_pfn);
        self.descs.migrate(old_pfn, new_pfn);
        // Scrub both physical locations from the hierarchy (the copy
        // invalidates the old lines; the new location starts cold).
        for frame in [old_pfn, new_pfn] {
            let first_line = frame.base().line();
            for core in &mut self.cores {
                core.caches.scrub_page(first_line);
            }
            self.llc.invalidate_page_lines(first_line);
        }
        // Correctness: the old translation must die before the frame is
        // reused. This models the migration entry + flush the kernel
        // installs; the batched IPI *cost* is charged by the mover.
        self.shootdown_silent(pid, &[vpn]);
        self.frames.free(&layout, old_pfn);
        tmprof_obs::metrics::inc(ObsMetric::SimMigrations);
        Ok((old_pfn, new_pfn))
    }

    /// Execute one op on `core` on behalf of `pid`.
    ///
    /// # Panics
    /// If `pid` is unknown, or a protection fault occurs with no handler
    /// installed (or the handler declines to resolve it).
    pub fn exec_op(&mut self, core: usize, pid: Pid, op: WorkOp) -> ExecOutcome {
        let lat = self.cfg.latency;
        match op {
            WorkOp::Compute => {
                let idx = self.proc_idx(pid);
                self.processes[idx].ops_executed += 1;
                let c = &mut self.cores[core];
                c.counts.retired_ops += 1;
                c.counts.cycles += lat.base_op;
                let sampled = c.trace.offer_compute() == TagOutcome::Tagged;
                ExecOutcome {
                    cycles: lat.base_op,
                    sampled,
                    ..Default::default()
                }
            }
            WorkOp::Mem { va, store, site } => self.exec_mem(core, pid, va, store, site),
        }
    }

    #[inline]
    fn exec_mem(
        &mut self,
        core_idx: usize,
        pid: Pid,
        va: VirtAddr,
        store: bool,
        site: u32,
    ) -> ExecOutcome {
        let proc_idx = self.proc_idx(pid);
        self.exec_mem_at(core_idx, proc_idx, pid, va, store, site)
    }

    /// Reference memory-op execution with the process index pre-resolved
    /// (the batched path hoists the lookup out of its loop).
    #[inline]
    // tmprof-lint: allow(panic-reachability) — core and proc_idx are validated by exec_batch before dispatch
    pub(crate) fn exec_mem_at(
        &mut self,
        core_idx: usize,
        proc_idx: usize,
        pid: Pid,
        va: VirtAddr,
        store: bool,
        site: u32,
    ) -> ExecOutcome {
        debug_assert!(va.is_canonical(), "non-canonical {va:?}");
        let lat = self.cfg.latency;
        let vpn = va.vpn();
        let mut out = ExecOutcome {
            cycles: lat.base_op,
            ..Default::default()
        };

        // --- bookkeeping: retirement ---
        {
            self.processes[proc_idx].ops_executed += 1;
            let c = &mut self.cores[core_idx].counts;
            c.retired_ops += 1;
            if store {
                c.stores += 1;
            } else {
                c.loads += 1;
            }
        }

        // --- address translation ---
        let (pfn, tlb_hit) = self.translate(core_idx, proc_idx, pid, vpn, store, &mut out);
        out.tlb = Some(tlb_hit);

        // --- cache hierarchy + trace sampling (shared with the batched
        // fast path, which must replay them bit-for-bit) ---
        let acc = MemAccess {
            core: core_idx,
            pid,
            va,
            store,
            site,
        };
        let is_mem = self.finish_mem(&acc, pfn, &mut out);

        // --- ground truth (invisible to profilers) ---
        self.truth.record(PageKey { pid, vpn }, is_mem);
        out
    }

    /// Everything after translation: cache hierarchy, cycle charging and
    /// the trace-sampling offer. Both execution paths — reference and
    /// batched — run this exact code, so their post-translation state
    /// evolution is identical by construction. Returns whether the access
    /// was served from memory (the caller records ground truth, since the
    /// batched path batches those updates).
    #[inline(always)]
    // tmprof-lint: allow(panic-reachability) — core and proc_idx are validated by exec_batch before dispatch
    pub(crate) fn finish_mem(&mut self, acc: &MemAccess, pfn: Pfn, out: &mut ExecOutcome) -> bool {
        let lat = self.cfg.latency;
        let &MemAccess {
            core: core_idx,
            pid,
            va,
            store,
            site,
        } = acc;
        let pa = phys_addr(pfn, va.page_offset());

        let core = &mut self.cores[core_idx];
        let source;
        let mut tier = None;
        let (private_hit, _) = core.caches.probe(pa, store);
        if let Some(level) = private_hit {
            source = level;
            out.cycles += match level {
                CacheLevel::L1 => lat.l1_hit,
                CacheLevel::L2 => {
                    core.counts.l1d_misses += 1;
                    lat.l2_hit
                }
                // tmprof-lint: allow(panic-reachability) — CacheHierarchy::probe only reports L1/L2 hits by construction; LLC and memory are probed on the shared path below
                _ => unreachable!("private probe beyond L2"),
            };
        } else {
            core.counts.l1d_misses += 1;
            core.counts.l2_misses += 1;
            if self.llc.probe(pa.line(), store) {
                source = CacheLevel::Llc;
                out.cycles += lat.llc_hit;
            } else {
                source = CacheLevel::Memory;
                let t = self.cfg.memory.tier_of(pfn);
                tier = Some(t);
                let spec = self.cfg.memory.spec(t);
                out.cycles += if store {
                    spec.store_latency
                } else {
                    spec.load_latency
                };
                // Per-tier bandwidth meter: a demand fill moves one line.
                // Past the tier's per-epoch byte budget, the access queues
                // behind the epoch's earlier traffic and pays the base
                // latency a second time (no budget — the default — means
                // the meter ticks but never charges).
                let served = self.tier_epoch_bytes[t.index()];
                if spec
                    .epoch_bytes_budget
                    .is_some_and(|budget| served >= budget)
                {
                    out.cycles += if store {
                        spec.store_latency
                    } else {
                        spec.load_latency
                    };
                    tmprof_obs::metrics::inc(ObsMetric::SimBandwidthSurcharged);
                }
                self.tier_epoch_bytes[t.index()] = served + crate::addr::LINE_SIZE;
                core.counts.llc_misses += 1;
                // tier2_* counters aggregate every slower-than-fastest tier;
                // under the default two-tier layout that is exactly tier 2.
                if t.is_fastest() {
                    core.counts.tier1_accesses += 1;
                } else {
                    core.counts.tier2_accesses += 1;
                    if store {
                        core.counts.tier2_stores += 1;
                    }
                }
                if self.device_stream && !t.is_fastest() {
                    self.device_log.push(pfn);
                }
                let fill = self.llc.fill(pa.line(), store);
                if let Some(victim_line) = fill.writeback {
                    Self::count_memory_writeback(
                        &self.cfg.memory,
                        &mut core.counts,
                        &mut self.tier_epoch_bytes,
                        victim_line,
                    );
                }
            }
            let victims = core.caches.fill_through(pa, store);
            // Route dirty private victims outward: LLC absorbs them if it
            // holds the line; otherwise they write through to memory.
            for victim in [victims.from_l1, victims.from_l2].into_iter().flatten() {
                if !self.llc.writeback_touch(victim) {
                    Self::count_memory_writeback(
                        &self.cfg.memory,
                        &mut core.counts,
                        &mut self.tier_epoch_bytes,
                        victim,
                    );
                }
            }
        }
        out.source = Some(source);
        out.tier = tier;

        // --- trace-sampling hardware ---
        let core = &mut self.cores[core_idx];
        let sample = TraceSample {
            timestamp: core.counts.cycles,
            cpu: core_idx as u32,
            pid,
            ip: site as u64,
            vaddr: va,
            paddr: pa,
            is_store: store,
            source,
            tier,
            latency: (out.cycles - lat.base_op).min(u32::MAX as u64) as u32,
            tlb_hit: out.tlb != Some(TlbHit::Miss),
        };
        out.sampled = core.trace.offer_mem(sample) == TagOutcome::Tagged;

        core.counts.cycles += out.cycles;
        source == CacheLevel::Memory
    }

    /// Account a dirty line written back to memory (slow-tier writebacks
    /// are the NVM write-endurance/energy cost). Writebacks also consume
    /// the destination tier's bandwidth, so the per-epoch byte meter ticks
    /// here too — asynchronously drained lines add queueing pressure even
    /// though no demand access waits on them.
    fn count_memory_writeback(
        memory: &TieredMemory,
        counts: &mut EventCounts,
        tier_bytes: &mut [u64],
        victim_line: u64,
    ) {
        let victim_pfn = PhysAddr(victim_line << crate::addr::LINE_SHIFT).pfn();
        if let Ok(t) = memory.try_tier_of(victim_pfn) {
            tier_bytes[t.index()] += crate::addr::LINE_SIZE;
            if !t.is_fastest() {
                counts.tier2_writebacks += 1;
            }
        }
    }

    /// Translate (`pid`, `vpn`), performing TLB lookups, hardware walks,
    /// fault handling and A/D-bit maintenance.
    // tmprof-lint: allow(panic-reachability) — core and proc_idx flow from exec_batch's scheduler contract; pid_index lookups yield in-range process indices
    fn translate(
        &mut self,
        core_idx: usize,
        proc_idx: usize,
        pid: Pid,
        vpn: Vpn,
        store: bool,
        out: &mut ExecOutcome,
    ) -> (Pfn, TlbHit) {
        let lat = self.cfg.latency;

        // Fast path: TLB hit (possibly with a D-bit write-back on a store
        // through a clean translation — §II-B).
        let hit = {
            let core = &mut self.cores[core_idx];
            core.tlb.access(pid, vpn, store)
        };
        if let Some(tr) = hit {
            if tr.level == TlbHit::L2 {
                let core = &mut self.cores[core_idx];
                core.counts.dtlb_l1_misses += 1;
                // The promotion placed the entry in L1: hint the batched
                // fast path. (L1 hits skip this — the hint is already
                // recorded, and the reference hot path stays untouched.)
                if !tr.entry.huge {
                    core.memo.remember(pid, vpn, tr.l1_slot as usize);
                }
            }
            let pfn = tr.entry.frame_for(vpn);
            if tr.needs_dirty_writeback {
                let proc = &mut self.processes[proc_idx];
                if let Some(pte) = proc.page_table.entry_mut(vpn) {
                    pte.set(bits::D);
                }
                let core = &mut self.cores[core_idx];
                core.counts.dirty_writebacks += 1;
                core.pml.record_dirty(pfn);
                out.cycles += lat.dirty_writeback;
            }
            return (pfn, tr.level);
        }

        // Slow path: hardware page walk.
        {
            let c = &mut self.cores[core_idx].counts;
            c.dtlb_l1_misses += 1;
            c.ptw_walks += 1;
        }
        out.cycles += lat.ptw;

        // The walk may fault (not-present, poisoned, prot-none) and retry.
        // Two fault deliveries per access are possible in principle
        // (not-present is resolved by the kernel allocator, never by the
        // fault policy), so bound the loop defensively.
        let mut repoison_after_fill = false;
        for _attempt in 0..4 {
            let epoch = self.epoch;
            let proc = &mut self.processes[proc_idx];
            // Single radix resolution per attempt: the resolved slot serves
            // both the presence/poison checks and, on the common success
            // path, the A/D-bit updates — no second walk.
            let pte_now = match proc.page_table.entry_mut(vpn) {
                Some(pte) => {
                    let snapshot = *pte;
                    if snapshot.present() && !snapshot.poisoned() && !snapshot.prot_none() {
                        // Successful walk: the hardware walker sets the A
                        // bit (and the D bit on stores) in the PTE it
                        // loads. Per-core counters are bumped after the
                        // PTE borrow ends.
                        let abit_set = !pte.accessed();
                        if abit_set {
                            pte.set(bits::A);
                        }
                        let mut newly_dirty = false;
                        if store && !pte.dirty() {
                            pte.set(bits::D);
                            newly_dirty = true;
                        }
                        let huge = pte.huge();
                        let entry = TlbEntry {
                            pid,
                            vpn: if huge {
                                Vpn(vpn.0 & !(crate::pagetable::HUGE_SPAN - 1))
                            } else {
                                vpn
                            },
                            pfn: pte.pfn(),
                            writable: pte.writable(),
                            dirty: pte.dirty(),
                            huge,
                        };
                        let pfn = entry.frame_for(vpn);
                        if repoison_after_fill {
                            pte.set(bits::POISON);
                        }
                        let core = &mut self.cores[core_idx];
                        if abit_set {
                            core.counts.ptw_abit_sets += 1;
                        }
                        if newly_dirty {
                            core.pml.record_dirty(pfn);
                        }
                        let l1_slot = core.tlb.fill(entry);
                        if !entry.huge {
                            core.memo.remember(pid, vpn, l1_slot);
                        }
                        return (pfn, TlbHit::Miss);
                    }
                    snapshot
                }
                None => Pte::NONE,
            };

            if !pte_now.present() {
                // Minor fault: first touch allocates first-come-first-serve
                // (the paper's baseline allocation) and maps writable. THP
                // processes try a 2 MiB mapping first, falling back to
                // 4 KiB when no contiguous run is free.
                let mut mapped_huge = false;
                if proc.thp {
                    let base = Vpn(vpn.0 & !(crate::pagetable::HUGE_SPAN - 1));
                    if let Some(base_pfn) = self.frames.alloc_huge_first_touch() {
                        let mut pte = Pte::new(base_pfn, true);
                        pte.set(bits::PS);
                        match proc.page_table.map_huge(base, pte) {
                            Ok(()) => {
                                // Descriptor/identity live at huge granularity.
                                self.descs.set_owner(base_pfn, PageKey { pid, vpn: base });
                                self.first_touch_log.push(PageKey { pid, vpn: base }.pack());
                                mapped_huge = true;
                            }
                            Err(crate::pagetable::MapError::HugeConflict { .. }) => {
                                // 4 KiB mappings landed in the range before
                                // THP was enabled for this process: return
                                // the run and take the base-page path, like
                                // a failed THP collapse.
                                self.frames.free_huge(&self.cfg.memory, base_pfn);
                                tmprof_obs::metrics::inc(ObsMetric::SimHugeFallbacks);
                                tmprof_obs::journal::record(
                                    ObsEvent::HugeFallback,
                                    self.cores.iter().map(|c| c.counts.cycles).sum(),
                                    epoch,
                                    base.0,
                                    0,
                                );
                            }
                        }
                    }
                }
                if !mapped_huge {
                    let pfn = self
                        .frames
                        .alloc_first_touch()
                        // tmprof-lint: allow(panic-reachability) — physical exhaustion means the experiment's footprint exceeds the configured machine; no policy can make progress, so dying loudly beats silently dropping accesses
                        .expect("physical memory exhausted");
                    proc.page_table.map(vpn, Pte::new(pfn, true));
                    self.descs.set_owner(pfn, PageKey { pid, vpn });
                    self.first_touch_log.push(PageKey { pid, vpn }.pack());
                }
                let c = &mut self.cores[core_idx].counts;
                c.page_faults += 1;
                out.cycles += lat.minor_fault;
                out.minor_fault = true;
                continue;
            }

            if pte_now.poisoned() || pte_now.prot_none() {
                let fault = PoisonFault {
                    core: core_idx as u32,
                    pid,
                    vpn,
                    pte: pte_now,
                    is_store: store,
                    epoch,
                };
                let action = self
                    .fault_policy
                    .as_mut()
                    .unwrap_or_else(|| {
                        // tmprof-lint: allow(panic-reachability) — a poisoned/PROT_NONE PTE can only exist because a profiler installed it, and profilers install their fault handler first; faulting with no handler means the instrumentation protocol was violated
                        panic!("protection fault on {vpn:?} with no fault policy installed")
                    })
                    .handle(&fault);
                {
                    let c = &mut self.cores[core_idx].counts;
                    c.protection_faults += 1;
                }
                out.cycles += lat.protection_fault + action.extra_cycles;
                out.protection_fault = true;
                let proc = &mut self.processes[proc_idx];
                let pte = proc
                    .page_table
                    .entry_mut(vpn)
                    // tmprof-lint: allow(panic-reachability) — this arm is only reached after the walk found a present (poisoned) PTE this iteration, and nothing unmaps between; absence would mean the walk lied
                    .expect("present entry");
                if action.unpoison {
                    pte.clear(bits::POISON);
                }
                if action.unprotect {
                    pte.clear(bits::PROT_NONE);
                }
                repoison_after_fill = action.repoison;
                if pte.poisoned() || pte.prot_none() {
                    // tmprof-lint: allow(panic-reachability) — a handler that neither unpoisons nor unprotects would spin this loop forever; failing fast surfaces the broken FaultPolicy implementation
                    panic!("fault policy did not resolve fault on {vpn:?}");
                }
                continue;
            }
        }
        // tmprof-lint: allow(panic-reachability) — each loop iteration either returns, maps the page, or clears the faulting bits; the iteration bound only trips if one of those steps stops making progress, which is a simulator bug
        panic!("translation for {vpn:?} did not converge");
    }

    /// Per-process usage snapshot for the TMP daemon's resource filter:
    /// (pid, ops executed, mapped pages).
    pub fn process_usage(&self) -> Vec<(Pid, u64, u64)> {
        self.processes
            .iter()
            .map(|p| (p.pid, p.ops_executed, p.page_table.mapped_pages()))
            .collect()
    }

    /// Look up the physical frame currently backing (`pid`, `vpn`),
    /// resolving huge-page offsets.
    pub fn frame_of(&self, pid: Pid, vpn: Vpn) -> Option<Pfn> {
        self.process(pid)?.page_table.resolve(vpn)
    }

    /// Current tier of a logical page.
    pub fn tier_of_page(&self, pid: Pid, vpn: Vpn) -> Option<Tier> {
        self.frame_of(pid, vpn).map(|p| self.cfg.memory.tier_of(p))
    }

    /// Touch helper: map a page by executing a single load through the full
    /// machinery (tests and warm-up).
    pub fn touch(&mut self, core: usize, pid: Pid, va: VirtAddr) -> ExecOutcome {
        self.exec_op(
            core,
            pid,
            WorkOp::Mem {
                va,
                store: false,
                site: 0,
            },
        )
    }

    /// Pages in first-touch (allocation) order, as packed
    /// [`PageKey`]s — the first-come-first-allocate baseline's residency
    /// order.
    pub fn first_touch_order(&self) -> &[u64] {
        &self.first_touch_log
    }

    /// Bytes of tier-1 memory (diagnostics).
    pub fn tier1_bytes(&self) -> u64 {
        self.cfg.memory.spec(Tier::Tier1).frames * PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::{MemTopology, TierSpec};

    fn small_machine() -> Machine {
        let mut m = Machine::new(MachineConfig::scaled(2, 64, 256, 64));
        m.add_process(1);
        m
    }

    #[test]
    fn first_touch_faults_then_maps() {
        let mut m = small_machine();
        let out = m.touch(0, 1, VirtAddr(0x5000));
        assert!(out.minor_fault);
        assert_eq!(out.tlb, Some(TlbHit::Miss));
        assert_eq!(out.source, Some(CacheLevel::Memory));
        assert_eq!(out.tier, Some(Tier::Tier1), "first touch lands in tier 1");
        // Second access: TLB hit, cache hit.
        let out2 = m.touch(0, 1, VirtAddr(0x5000));
        assert!(!out2.minor_fault);
        assert_eq!(out2.tlb, Some(TlbHit::L1));
        assert_eq!(out2.source, Some(CacheLevel::L1));
        assert!(out2.cycles < out.cycles);
    }

    #[test]
    fn walker_sets_a_bit_only_on_walks() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x5000));
        let counts = m.counts(0);
        assert_eq!(counts.ptw_walks, 1);
        assert_eq!(counts.ptw_abit_sets, 1);
        // TLB-hit accesses never touch the A bit.
        for _ in 0..10 {
            m.touch(0, 1, VirtAddr(0x5000));
        }
        assert_eq!(m.counts(0).ptw_abit_sets, 1);
        // Clear A via scan; with the TLB entry still live, no walk happens,
        // so the bit stays clear (the paper's staleness trade-off).
        let (pt, _, _) = m.scan_parts(1).unwrap();
        pt.entry_mut(Vpn(5)).unwrap().clear(bits::A);
        m.touch(0, 1, VirtAddr(0x5000));
        let (pt, _, _) = m.scan_parts(1).unwrap();
        assert!(!pt.get(Vpn(5)).accessed(), "stale until TLB eviction");
        assert_eq!(m.counts(0).ptw_abit_sets, 1);
        // After a shootdown the next access walks and re-sets the bit.
        m.shootdown(1, &[Vpn(5)], false);
        m.touch(0, 1, VirtAddr(0x5000));
        let (pt, _, _) = m.scan_parts(1).unwrap();
        assert!(pt.get(Vpn(5)).accessed());
        assert_eq!(m.counts(0).ptw_abit_sets, 2);
    }

    #[test]
    fn store_through_clean_tlb_entry_sets_d_bit() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x7000)); // load maps it, D clear
        {
            let (pt, _, _) = m.scan_parts(1).unwrap();
            assert!(!pt.get(Vpn(7)).dirty());
        }
        m.exec_op(
            0,
            1,
            WorkOp::Mem {
                va: VirtAddr(0x7000),
                store: true,
                site: 0,
            },
        );
        let dwb = m.counts(0).dirty_writebacks;
        assert_eq!(dwb, 1);
        let (pt, _, _) = m.scan_parts(1).unwrap();
        assert!(pt.get(Vpn(7)).dirty());
    }

    #[test]
    fn spills_to_tier2_when_tier1_full() {
        let mut m = small_machine(); // 64 tier-1 frames
        let mut tiers = Vec::new();
        for i in 0..80u64 {
            let out = m.touch(0, 1, VirtAddr(i * PAGE_SIZE));
            tiers.push(out.tier.unwrap());
        }
        assert!(tiers[..64].iter().all(|&t| t == Tier::Tier1));
        assert!(tiers[64..].iter().all(|&t| t == Tier::Tier2));
    }

    #[test]
    fn tier2_access_is_slower() {
        let mut m = small_machine();
        for i in 0..64u64 {
            m.touch(0, 1, VirtAddr(i * PAGE_SIZE));
        }
        // Next page lands in tier 2; compare fresh-miss latencies of a
        // tier-1 re-read (cold caches forced via distinct lines) and tier 2.
        let t2 = m.touch(0, 1, VirtAddr(100 * PAGE_SIZE));
        assert_eq!(t2.tier, Some(Tier::Tier2));
        let t2_more = m.exec_op(
            0,
            1,
            WorkOp::Mem {
                va: VirtAddr(100 * PAGE_SIZE + 64),
                store: false,
                site: 0,
            },
        );
        assert_eq!(t2_more.source, Some(CacheLevel::Memory));
        let t1_more = m.exec_op(
            0,
            1,
            WorkOp::Mem {
                va: VirtAddr(63 * PAGE_SIZE + 64),
                store: false,
                site: 0,
            },
        );
        assert_eq!(t1_more.source, Some(CacheLevel::Memory));
        assert!(t2_more.cycles > t1_more.cycles);
    }

    #[test]
    fn migration_moves_page_and_stats() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x3000));
        let old = m.frame_of(1, Vpn(3)).unwrap();
        assert_eq!(m.memory().tier_of(old), Tier::Tier1);
        m.descs_mut().bump_trace(old, 0);
        let (from, to) = m.migrate_page(1, Vpn(3), Tier::Tier2).unwrap();
        assert_eq!(from, old);
        assert_eq!(m.memory().tier_of(to), Tier::Tier2);
        assert_eq!(m.frame_of(1, Vpn(3)).unwrap(), to);
        assert_eq!(m.descs().get(to).trace_epoch, 1);
        assert_eq!(m.descs().get(from).owner, None);
        // Migrating again to the same tier is rejected.
        assert_eq!(
            m.migrate_page(1, Vpn(3), Tier::Tier2),
            Err(MigrateError::AlreadyThere)
        );
        // And the freed tier-1 frame is reusable.
        assert_eq!(m.frames().free_in(Tier::Tier1), 64);
    }

    #[test]
    fn migrated_page_served_from_new_tier() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x3000));
        m.migrate_page(1, Vpn(3), Tier::Tier2).unwrap();
        m.shootdown(1, &[Vpn(3)], false);
        let out = m.touch(0, 1, VirtAddr(0x3000));
        assert_eq!(out.tier, Some(Tier::Tier2));
        assert_eq!(out.source, Some(CacheLevel::Memory), "caches were scrubbed");
    }

    #[test]
    fn migrate_unmapped_page_fails() {
        let mut m = small_machine();
        assert_eq!(
            m.migrate_page(1, Vpn(42), Tier::Tier2),
            Err(MigrateError::NotMapped)
        );
    }

    #[test]
    fn ground_truth_counts_memory_accesses() {
        let mut m = small_machine();
        for _ in 0..5 {
            m.touch(0, 1, VirtAddr(0x9000));
        }
        let key = PageKey {
            pid: 1,
            vpn: Vpn(9),
        };
        let t = m.truth().current();
        assert_eq!(t.references[&key.pack()], 5);
        assert_eq!(
            t.mem_accesses[&key.pack()],
            1,
            "only the cold miss reaches memory"
        );
        let epoch = m.advance_epoch();
        assert_eq!(epoch.total_mem_accesses(), 1);
        assert_eq!(m.truth().current().total_mem_accesses(), 0);
        assert_eq!(m.epoch(), 1);
    }

    #[test]
    fn trace_engine_samples_memory_ops() {
        let mut m = small_machine();
        m.trace_engine_mut(0).set_enabled(true);
        m.trace_engine_mut(0)
            .set_mode(TraceMode::IbsOp { period: 2 });
        for i in 0..100u64 {
            m.touch(0, 1, VirtAddr((i % 4) * PAGE_SIZE));
        }
        let (samples, _) = m.trace_engine_mut(0).drain();
        assert_eq!(samples.len(), 50);
        let s = samples[0];
        assert_eq!(s.pid, 1);
        assert!(s.vaddr.0 < 4 * PAGE_SIZE);
        assert_eq!(s.paddr.pfn(), m.frame_of(1, s.vaddr.vpn()).unwrap());
    }

    #[test]
    fn counters_aggregate_across_cores() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x1000));
        m.touch(1, 1, VirtAddr(0x2000));
        let agg = m.aggregate_counts();
        assert_eq!(agg.retired_ops, 2);
        assert_eq!(agg.page_faults, 2);
    }

    #[test]
    fn process_usage_reports_ops_and_pages() {
        let mut m = small_machine();
        m.add_process(2);
        for i in 0..10u64 {
            m.touch(0, 1, VirtAddr(i * PAGE_SIZE));
        }
        m.exec_op(1, 2, WorkOp::Compute);
        let usage = m.process_usage();
        assert_eq!(usage.len(), 2);
        let p1 = usage.iter().find(|u| u.0 == 1).unwrap();
        assert_eq!(p1.1, 10);
        assert_eq!(p1.2, 10);
        let p2 = usage.iter().find(|u| u.0 == 2).unwrap();
        assert_eq!(p2.1, 1);
        assert_eq!(p2.2, 0);
    }

    #[test]
    #[should_panic(expected = "no fault policy")]
    fn poison_fault_without_handler_panics() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x1000));
        m.shootdown(1, &[Vpn(1)], false);
        let (pt, _, _) = m.scan_parts(1).unwrap();
        pt.entry_mut(Vpn(1)).unwrap().set(bits::POISON);
        m.touch(0, 1, VirtAddr(0x1000));
    }

    struct CountingHandler {
        hits: std::sync::Arc<std::sync::atomic::AtomicU32>,
    }
    impl FaultPolicy for CountingHandler {
        fn handle(&mut self, _fault: &PoisonFault) -> FaultAction {
            self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            FaultAction {
                unpoison: true,
                repoison: true,
                extra_cycles: 100,
                ..Default::default()
            }
        }
    }

    #[test]
    fn badgertrap_style_repoison_faults_once_per_walk() {
        let mut m = small_machine();
        let hits = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        m.set_fault_policy(Some(Box::new(CountingHandler { hits: hits.clone() })));
        m.touch(0, 1, VirtAddr(0x1000));
        m.shootdown(1, &[Vpn(1)], false);
        {
            let (pt, _, _) = m.scan_parts(1).unwrap();
            pt.entry_mut(Vpn(1)).unwrap().set(bits::POISON);
        }
        // First access faults, unpoisons, fills TLB, repoisons.
        let out = m.touch(0, 1, VirtAddr(0x1000));
        assert!(out.protection_fault);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
        // TLB-hit accesses sail through the poisoned PTE.
        for _ in 0..10 {
            let out = m.touch(0, 1, VirtAddr(0x1000));
            assert!(!out.protection_fault);
        }
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 1);
        // Evicting the translation re-arms the trap.
        m.shootdown(1, &[Vpn(1)], false);
        let out = m.touch(0, 1, VirtAddr(0x1000));
        assert!(out.protection_fault);
        assert_eq!(hits.load(std::sync::atomic::Ordering::Relaxed), 2);
        assert_eq!(m.aggregate_counts().protection_faults, 2);
    }

    #[test]
    fn profiling_charge_is_tracked_separately() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x1000));
        let before = m.counts(0).cycles;
        m.charge_profiling(0, 500);
        assert_eq!(m.counts(0).cycles, before + 500);
        assert_eq!(m.counts(0).profiling_cycles, 500);
    }

    #[test]
    fn shootdown_charges_every_core() {
        let mut m = small_machine();
        m.touch(0, 1, VirtAddr(0x1000));
        let charged = m.shootdown(1, &[Vpn(1)], true);
        let ipi = m.config().latency.shootdown_ipi;
        assert_eq!(charged, ipi * 2);
        assert_eq!(m.counts(1).profiling_cycles, ipi);
    }

    #[test]
    fn shootdown_of_nothing_is_free() {
        let mut m = small_machine();
        assert_eq!(m.shootdown(1, &[], true), 0);
    }

    /// Machine whose fastest tier carries the given per-epoch byte budget
    /// (`None` = the default unlimited spec), plus a strided driver that
    /// forces sustained memory traffic.
    fn bandwidth_machine(budget: Option<u64>) -> Machine {
        let mut t1 = TierSpec::dram(64);
        if let Some(b) = budget {
            t1 = t1.with_epoch_bytes_budget(b);
        }
        let mut cfg = MachineConfig::scaled(1, 64, 256, 1 << 20);
        cfg.memory = MemTopology::new(t1, TierSpec::nvm(256));
        let mut m = Machine::new(cfg);
        m.add_process(1);
        m
    }

    fn stride(m: &mut Machine, ops: u64) {
        // Walk distinct lines across 48 tier-1 pages: far beyond the
        // scaled-down caches, so nearly every access is a demand fill.
        for i in 0..ops {
            let page = i % 48;
            let line = (i / 48 * 64) % PAGE_SIZE;
            m.exec_op(
                0,
                1,
                WorkOp::Mem {
                    va: VirtAddr(page * PAGE_SIZE + line),
                    store: false,
                    site: 0,
                },
            );
        }
    }

    #[test]
    fn bandwidth_meter_ticks_and_resets_at_the_horizon() {
        let mut m = bandwidth_machine(None);
        stride(&mut m, 2_000);
        let served = m.tier_epoch_bytes(Tier::Tier1);
        assert!(served > 0, "line fills tick the meter");
        assert_eq!(served % crate::addr::LINE_SIZE, 0);
        m.advance_epoch();
        assert_eq!(m.tier_epoch_bytes(Tier::Tier1), 0, "horizon resets");
    }

    #[test]
    fn saturated_tier_surcharges_and_unlimited_does_not() {
        // Identical op sequences; only the budget differs. The budgeted
        // run must be strictly slower once the meter passes the budget,
        // and a budget the epoch never reaches must change nothing.
        let mut unlimited = bandwidth_machine(None);
        stride(&mut unlimited, 3_000);
        let base_cycles = unlimited.aggregate_counts().cycles;

        let mut tight = bandwidth_machine(Some(4 * crate::addr::LINE_SIZE));
        stride(&mut tight, 3_000);
        let tight_cycles = tight.aggregate_counts().cycles;
        assert!(
            tight_cycles > base_cycles,
            "saturation surcharge must cost cycles ({tight_cycles} vs {base_cycles})"
        );
        assert_eq!(
            tight.tier_epoch_bytes(Tier::Tier1),
            unlimited.tier_epoch_bytes(Tier::Tier1),
            "the meter itself is budget-independent"
        );

        let mut roomy = bandwidth_machine(Some(u64::MAX));
        stride(&mut roomy, 3_000);
        assert_eq!(
            roomy.aggregate_counts().cycles,
            base_cycles,
            "an unreached budget is byte-identical to no budget"
        );
    }

    #[test]
    fn bandwidth_budget_windows_are_per_epoch() {
        // Epoch 1 saturates; after the horizon the same traffic starts
        // from a fresh meter, so the early accesses are full price again.
        let budget = Some(16 * crate::addr::LINE_SIZE);
        let mut m = bandwidth_machine(budget);
        stride(&mut m, 500);
        let first = m.aggregate_counts().cycles;
        m.advance_epoch();
        stride(&mut m, 500);
        let second = m.aggregate_counts().cycles - first;
        // Same footprint, warmer caches: the second epoch cannot be
        // *more* surcharged than the first (and may generate no memory
        // traffic at all once everything is cache-resident).
        assert!(second <= first);
    }
}
