//! Batched execution: quantum-granular op execution for [`Machine`].
//!
//! [`Machine::exec_op`] is the *reference* execution path — one op at a
//! time, every invariant re-derived per op. [`Machine::exec_batch`] executes
//! a whole scheduling quantum for one process on one core and is required to
//! be bit-identical to the equivalent `exec_op` loop (the property tests in
//! `tests/batch_props.rs` enforce this). It gets its speed from three
//! sources, none of which may change observable state evolution:
//!
//! 1. **Hoisted invariants.** The process-table index, latency table and
//!    engine references are resolved once per quantum instead of once per
//!    op.
//! 2. **A per-core translation memo.** A small direct-mapped table mapping
//!    (`pid`, `vpn`) to the L1 DTLB slot that cached the translation on the
//!    last walk or L2 promotion. A memo hit skips the full associative TLB
//!    probe and replays exactly the state transition a reference L1 hit
//!    performs ([`crate::tlb::Tlb::fast_rehit`]). Memo hints are *verified
//!    on use* against the live TLB slot — the memo can never serve stale
//!    translations, only waste a probe — and are additionally cleared on
//!    every shootdown, migration, A-bit scan and epoch advance.
//! 3. **Run-length ground-truth recording.** Consecutive accesses to the
//!    same page within a quantum collapse into one hash-map update. Flushes
//!    happen on page change, on any fallback to the reference path, and at
//!    quantum end, preserving both the final counts and the maps' key
//!    insertion order.
//!
//! Anything the fast path cannot provably replay — TLB misses, huge-page
//! regimes, clean-store D-bit write-backs, faults — falls back to the
//! reference path for that op.

use crate::addr::Vpn;
use crate::machine::{ExecOutcome, Machine, MemAccess, WorkOp};
use crate::pagedesc::PageKey;
use crate::tlb::{Pid, TlbHit};
use tmprof_obs::metrics::Metric;

/// Memo capacity. Power of two; sized well past the whole TLB (L1 + L2)
/// so pages of a hot working set rarely alias the surrounding cold
/// stream. 2048 slots × 24 B = 48 KiB per core.
const MEMO_SLOTS: usize = 2048;

#[derive(Clone, Copy)]
struct MemoSlot {
    pid: Pid,
    /// Generation the hint was recorded in; stale generations are misses.
    gen: u32,
    vpn: Vpn,
    l1_slot: u32,
}

/// Per-core software translation memo: (`pid`, `vpn`) → L1 DTLB slot hint.
///
/// Purely a performance hint. Every probe result is re-verified against the
/// actual TLB slot before use, so a stale hint (or a generation-counter
/// wrap) costs one wasted comparison, never a wrong translation.
pub(crate) struct TranslateMemo {
    gen: u32,
    slots: Vec<MemoSlot>,
}

impl TranslateMemo {
    pub(crate) fn new() -> Self {
        Self {
            gen: 1,
            slots: vec![
                MemoSlot {
                    pid: 0,
                    gen: 0,
                    vpn: Vpn(0),
                    l1_slot: 0,
                };
                MEMO_SLOTS
            ],
        }
    }

    #[inline]
    fn index(pid: Pid, vpn: Vpn) -> usize {
        // Same PID mixing as the TLB's set function, for the same reason.
        ((vpn.0 ^ (pid as u64).wrapping_mul(0x9E37_79B9)) as usize) & (MEMO_SLOTS - 1)
    }

    /// L1 slot hint for (`pid`, `vpn`), if one was recorded this generation.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — Self::index masks the slot with MEMO_SLOTS - 1
    pub(crate) fn probe(&self, pid: Pid, vpn: Vpn) -> Option<usize> {
        let s = &self.slots[Self::index(pid, vpn)];
        (s.gen == self.gen && s.pid == pid && s.vpn == vpn).then_some(s.l1_slot as usize)
    }

    /// Record that (`pid`, `vpn`) now lives in L1 slot `l1_slot`.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — Self::index masks the slot with MEMO_SLOTS - 1
    pub(crate) fn remember(&mut self, pid: Pid, vpn: Vpn, l1_slot: usize) {
        self.slots[Self::index(pid, vpn)] = MemoSlot {
            pid,
            gen: self.gen,
            vpn,
            l1_slot: l1_slot as u32,
        };
    }

    /// Drop every hint in O(1) by advancing the generation.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.gen = self.gen.wrapping_add(1);
    }
}

impl Machine {
    /// Execute a quantum of `ops` for `pid` on `core`.
    ///
    /// Bit-identical to `for &op in ops { machine.exec_op(core, pid, op) }`
    /// in every observable (counters, ground truth, trace samples, TLB and
    /// cache state, page tables), but with per-op invariants hoisted and a
    /// translation-memo fast path for repeat touches. See the module docs.
    // tmprof-lint: allow(panic-reachability) — core ids and proc_idx come from the scheduler contract: core < cores.len(), proc_idx from the pid_index map
    pub fn exec_batch(&mut self, core: usize, pid: Pid, ops: &[WorkOp]) {
        let lat = self.config().latency;
        let proc_idx = self.proc_idx(pid);
        // Run-length ground-truth accumulator for the current page.
        let mut pend_key = 0u64;
        let mut pend_refs = 0u64;
        let mut pend_mems = 0u64;
        // Deferred pure-accumulator counters. Nothing inside the machine
        // reads these mid-op (profilers read them between quanta) and the
        // fallback path's own increments commute with addition, so batching
        // them into one store per quantum is observably identical.
        let mut retired = 0u64;
        let mut loads = 0u64;
        let mut stores = 0u64;
        let mut fallbacks = 0u64;
        for &op in ops {
            match op {
                WorkOp::Compute => {
                    retired += 1;
                    let c = &mut self.cores[core];
                    c.counts.cycles += lat.base_op;
                    let _ = c.trace.offer_compute();
                }
                WorkOp::Mem { va, store, site } => {
                    debug_assert!(va.is_canonical(), "non-canonical {va:?}");
                    let vpn = va.vpn();
                    let c = &mut self.cores[core];
                    let hit = c
                        .memo
                        .probe(pid, vpn)
                        .and_then(|slot| c.tlb.fast_rehit(slot, pid, vpn, store));
                    if let Some(entry) = hit {
                        retired += 1;
                        if store {
                            stores += 1;
                        } else {
                            loads += 1;
                        }
                        let mut out = ExecOutcome {
                            cycles: lat.base_op,
                            tlb: Some(TlbHit::L1),
                            ..Default::default()
                        };
                        let acc = MemAccess {
                            core,
                            pid,
                            va,
                            store,
                            site,
                        };
                        let is_mem = self.finish_mem(&acc, entry.pfn, &mut out);
                        let key = PageKey { pid, vpn }.pack();
                        if pend_refs > 0 && key != pend_key {
                            self.truth.record_many(pend_key, pend_refs, pend_mems);
                            pend_refs = 0;
                            pend_mems = 0;
                        }
                        pend_key = key;
                        pend_refs += 1;
                        pend_mems += is_mem as u64;
                    } else {
                        // Reference path (records its own ground truth, so
                        // flush first to preserve key insertion order).
                        if pend_refs > 0 {
                            self.truth.record_many(pend_key, pend_refs, pend_mems);
                            pend_refs = 0;
                            pend_mems = 0;
                        }
                        fallbacks += 1;
                        let _ = self.exec_mem_at(core, proc_idx, pid, va, store, site);
                    }
                }
            }
        }
        if pend_refs > 0 {
            self.truth.record_many(pend_key, pend_refs, pend_mems);
        }
        self.processes[proc_idx].ops_executed += retired;
        let counts = &mut self.cores[core].counts;
        counts.retired_ops += retired;
        counts.loads += loads;
        counts.stores += stores;
        // Bulk metric adds at quantum granularity: three thread-local cell
        // updates per quantum, nothing per op (memo hits are exactly the
        // fast-path loads + stores).
        tmprof_obs::metrics::add(Metric::SimBatchOps, ops.len() as u64);
        tmprof_obs::metrics::add(Metric::SimMemoHits, loads + stores);
        tmprof_obs::metrics::add(Metric::SimBatchFallbacks, fallbacks);
    }
}
