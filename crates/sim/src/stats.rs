//! Ground-truth access accounting.
//!
//! The simulator — unlike real hardware — can afford omniscience: it records
//! exactly how many times each logical page is touched, both at the
//! reference level (every load/store) and at the memory level (LLC misses).
//! This is what the paper's Oracle policy "assumes knowledge of" (Table II),
//! and what the Fig. 6 hitrate replay uses as the denominator. None of this
//! information is visible to the profilers, which see only their own sampled
//! views.

use crate::keymap::KeyMap;
use crate::pagedesc::PageKey;

/// Per-epoch, per-page true access counts.
///
/// Counts live in [`KeyMap`]s: `record` runs on the simulator's per-op hot
/// path, so the map hash must be cheap (and deterministic for replays).
#[derive(Clone, Debug, Default)]
pub struct EpochTruth {
    /// Memory-level accesses (LLC misses) per packed [`PageKey`].
    pub mem_accesses: KeyMap<u64, u64>,
    /// All references (cache hits included) per packed [`PageKey`].
    pub references: KeyMap<u64, u64>,
}

impl EpochTruth {
    /// Total memory-level accesses this epoch.
    pub fn total_mem_accesses(&self) -> u64 {
        self.mem_accesses.values().sum()
    }

    /// Pages touched at the memory level this epoch.
    pub fn pages_touched(&self) -> usize {
        self.mem_accesses.len()
    }

    /// Memory accesses to one page this epoch.
    pub fn mem_accesses_of(&self, key: PageKey) -> u64 {
        self.mem_accesses.get(&key.pack()).copied().unwrap_or(0)
    }
}

/// The machine's omniscient recorder.
#[derive(Debug, Default)]
pub struct GroundTruth {
    current: EpochTruth,
    /// Lifetime memory accesses per page (heat over the whole run).
    lifetime_mem: KeyMap<u64, u64>,
}

impl GroundTruth {
    /// Fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one reference; `memory_level` marks LLC misses.
    #[inline]
    pub fn record(&mut self, key: PageKey, memory_level: bool) {
        let packed = key.pack();
        *self.current.references.entry(packed).or_insert(0) += 1;
        if memory_level {
            *self.current.mem_accesses.entry(packed).or_insert(0) += 1;
            *self.lifetime_mem.entry(packed).or_insert(0) += 1;
        }
    }

    /// Record `refs` references to one packed page key, `mems` of them at
    /// the memory level. Equivalent to `refs` calls of [`GroundTruth::record`]
    /// (the batched executor's run-length flush).
    #[inline]
    pub fn record_many(&mut self, packed: u64, refs: u64, mems: u64) {
        *self.current.references.entry(packed).or_insert(0) += refs;
        if mems > 0 {
            *self.current.mem_accesses.entry(packed).or_insert(0) += mems;
            *self.lifetime_mem.entry(packed).or_insert(0) += mems;
        }
    }

    /// Close the epoch: return its truth and start a fresh one.
    pub fn take_epoch(&mut self) -> EpochTruth {
        std::mem::take(&mut self.current)
    }

    /// Peek at the in-progress epoch.
    pub fn current(&self) -> &EpochTruth {
        &self.current
    }

    /// Lifetime memory accesses per packed page key.
    pub fn lifetime_mem(&self) -> &KeyMap<u64, u64> {
        &self.lifetime_mem
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Vpn;

    fn key(vpn: u64) -> PageKey {
        PageKey {
            pid: 1,
            vpn: Vpn(vpn),
        }
    }

    #[test]
    fn records_references_and_memory_separately() {
        let mut gt = GroundTruth::new();
        gt.record(key(1), false);
        gt.record(key(1), true);
        gt.record(key(2), false);
        let t = gt.current();
        assert_eq!(t.references.len(), 2);
        assert_eq!(t.mem_accesses.len(), 1);
        assert_eq!(t.mem_accesses_of(key(1)), 1);
        assert_eq!(t.mem_accesses_of(key(2)), 0);
        assert_eq!(t.total_mem_accesses(), 1);
    }

    #[test]
    fn take_epoch_resets_current_but_keeps_lifetime() {
        let mut gt = GroundTruth::new();
        gt.record(key(1), true);
        let e1 = gt.take_epoch();
        assert_eq!(e1.total_mem_accesses(), 1);
        assert_eq!(gt.current().total_mem_accesses(), 0);
        gt.record(key(1), true);
        assert_eq!(gt.lifetime_mem()[&key(1).pack()], 2);
    }

    #[test]
    fn pages_touched_counts_distinct_pages() {
        let mut gt = GroundTruth::new();
        for v in 0..10 {
            gt.record(key(v), true);
            gt.record(key(v), true);
        }
        assert_eq!(gt.current().pages_touched(), 10);
    }
}
