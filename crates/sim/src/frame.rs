//! Physical frame allocation across tiers.
//!
//! The allocator implements the paper's baseline placement — "a NUMA-like,
//! first-come-first-allocate tiered-memory policy" (§VI-C): allocations are
//! satisfied from tier 1 until it is exhausted, then spill down the tier
//! order (tier 2, then any deeper tiers of an N-tier topology). Frames
//! freed by migration return to their tier's free list so the page mover can
//! exchange hot and cold pages between tiers.
//!
//! Never-allocated frames are represented as one contiguous *fresh* range
//! per tier instead of an eagerly built free list, so constructing an
//! allocator over a terabyte-class tier is O(1) in time and memory; only
//! frames that have actually been freed occupy list storage. The observable
//! behavior (allocation order, huge-run placement, failure cases) is
//! identical to the historical dense free list, which kept frames
//! descending so `pop()` yielded ascending PFNs: recycled frames are reused
//! LIFO first, then fresh frames ascend from the bottom of the tier, and
//! huge runs come from the top.
struct _Docs;

use crate::addr::Pfn;
use crate::tier::{Tier, TieredMemory};

/// Frames per 2 MiB huge page.
pub const HUGE_FRAMES: u64 = 512;

/// One tier's free space: the fresh (never-allocated) range plus frames
/// returned by `free`/`free_huge` in push order.
///
/// The dense equivalent is the concatenation
/// `[fresh_hi-1, .., fresh_lo] ++ recycled`, with `pop()` taking from the
/// *end* — i.e. most-recently-freed first, then fresh frames ascending.
struct TierFree {
    fresh_lo: u64,
    fresh_hi: u64,
    recycled: Vec<Pfn>,
}

impl TierFree {
    fn len(&self) -> u64 {
        (self.fresh_hi - self.fresh_lo) + self.recycled.len() as u64
    }

    fn fresh_len(&self) -> u64 {
        self.fresh_hi - self.fresh_lo
    }

    /// Element `i` of the equivalent dense free list (front = highest
    /// fresh frame, then the recycled tail in push order).
    // tmprof-lint: allow(panic-reachability) — the recycled index is taken only on the i >= fresh_len branch, so i - fresh_len < recycled.len()
    fn virtual_entry(&self, i: u64) -> Pfn {
        if i < self.fresh_len() {
            Pfn(self.fresh_hi - 1 - i)
        } else {
            self.recycled[(i - self.fresh_len()) as usize]
        }
    }

    fn contains(&self, pfn: Pfn) -> bool {
        (self.fresh_lo..self.fresh_hi).contains(&pfn.0) || self.recycled.contains(&pfn)
    }
}

/// Free-list frame allocator over the N-tier physical space.
pub struct FrameAllocator {
    free: Vec<TierFree>,
    allocated: Vec<u64>,
}

/// Error returned when no frame is available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The tier that was requested (or `None` for an any-tier request).
    pub tier: Option<Tier>,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tier {
            Some(t) => write!(f, "out of physical frames in {t:?}"),
            None => write!(f, "out of physical frames in all tiers"),
        }
    }
}

impl std::error::Error for OutOfMemory {}

impl FrameAllocator {
    /// Build an allocator with every frame of `layout` free. O(1) per tier
    /// regardless of capacity.
    ///
    /// Frames are handed out in ascending address order, which makes
    /// allocation deterministic and heatmaps (Figs. 3–4) readable.
    pub fn new(layout: &TieredMemory) -> Self {
        let free: Vec<TierFree> = layout
            .tiers()
            .map(|tier| {
                let first = layout.first_frame(tier).0;
                let count = layout.spec(tier).frames;
                TierFree {
                    fresh_lo: first,
                    fresh_hi: first + count,
                    recycled: Vec::new(),
                }
            })
            .collect();
        let allocated = vec![0; free.len()];
        Self { free, allocated }
    }

    /// Number of tiers this allocator partitions frames over.
    pub fn num_tiers(&self) -> usize {
        self.free.len()
    }

    /// Allocate from a specific tier.
    pub fn alloc_in(&mut self, tier: Tier) -> Result<Pfn, OutOfMemory> {
        let free = &mut self.free[tier.index()];
        let pfn = match free.recycled.pop() {
            Some(pfn) => pfn,
            None if free.fresh_lo < free.fresh_hi => {
                let pfn = Pfn(free.fresh_lo);
                free.fresh_lo += 1;
                pfn
            }
            None => return Err(OutOfMemory { tier: Some(tier) }),
        };
        self.allocated[tier.index()] += 1;
        Ok(pfn)
    }

    /// First-come-first-allocate: fill the fastest tier first, then spill
    /// down the waterfall tier by tier.
    pub fn alloc_first_touch(&mut self) -> Result<Pfn, OutOfMemory> {
        for i in 0..self.free.len() {
            if let Ok(pfn) = self.alloc_in(Tier::from_index(i)) {
                return Ok(pfn);
            }
        }
        Err(OutOfMemory { tier: None })
    }

    /// Allocate a contiguous 512-frame run for a 2 MiB huge page from a
    /// specific tier. Returns the base (lowest) frame. Contiguous runs are
    /// taken from the top of the tier's address range, where the free list
    /// stays unfragmented; fragmentation makes this fail gracefully
    /// (`None`), upon which callers fall back to 4 KiB pages — exactly the
    /// kernel's THP behavior.
    pub fn alloc_huge_in(&mut self, tier: Tier) -> Option<Pfn> {
        let free = &mut self.free[tier.index()];
        if free.len() < HUGE_FRAMES {
            return None;
        }
        let fresh_len = free.fresh_len();
        let base = if fresh_len >= HUGE_FRAMES {
            // Entirely fresh: the top of the fresh range is contiguous by
            // construction.
            free.fresh_hi -= HUGE_FRAMES;
            Pfn(free.fresh_hi)
        } else {
            // The run would straddle fresh and recycled frames: check that
            // the head of the equivalent dense list still descends without
            // a hole, exactly as the dense allocator checked its front run.
            let top = free.virtual_entry(0).0;
            for i in 0..HUGE_FRAMES {
                if top.checked_sub(i).map(Pfn) != Some(free.virtual_entry(i)) {
                    return None;
                }
            }
            free.fresh_hi = free.fresh_lo;
            free.recycled.drain(0..(HUGE_FRAMES - fresh_len) as usize);
            Pfn(top - (HUGE_FRAMES - 1))
        };
        self.allocated[tier.index()] += HUGE_FRAMES;
        Some(base)
    }

    /// Huge first-touch: fastest tier first, spilling down the waterfall.
    pub fn alloc_huge_first_touch(&mut self) -> Option<Pfn> {
        (0..self.free.len()).find_map(|i| self.alloc_huge_in(Tier::from_index(i)))
    }

    /// Return a huge page's 512 frames to their tier's free list.
    pub fn free_huge(&mut self, layout: &TieredMemory, base: Pfn) {
        let tier = layout.tier_of(base);
        self.allocated[tier.index()] -= HUGE_FRAMES;
        // Push descending so the head of the recycled run stays the highest
        // frames (preserving future huge allocability when possible) and a
        // subsequent `alloc_in` pops the base frame first.
        for i in (0..HUGE_FRAMES).rev() {
            self.free[tier.index()].recycled.push(Pfn(base.0 + i));
        }
    }

    /// Return a frame to its tier's free list.
    ///
    /// The caller passes the layout so the frame is filed under the right
    /// tier; a frame freed twice is a logic error and panics in debug builds.
    pub fn free(&mut self, layout: &TieredMemory, pfn: Pfn) {
        let tier = layout.tier_of(pfn);
        debug_assert!(
            !self.free[tier.index()].contains(pfn),
            "double free of {pfn:?}"
        );
        self.allocated[tier.index()] -= 1;
        self.free[tier.index()].recycled.push(pfn);
    }

    /// Frames currently free in `tier`.
    pub fn free_in(&self, tier: Tier) -> u64 {
        self.free[tier.index()].len()
    }

    /// Frames currently allocated from `tier`.
    pub fn allocated_in(&self, tier: Tier) -> u64 {
        self.allocated[tier.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> TieredMemory {
        TieredMemory::with_frames(4, 8)
    }

    #[test]
    fn first_touch_fills_tier1_then_spills() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let mut tiers = Vec::new();
        for _ in 0..12 {
            let pfn = fa.alloc_first_touch().unwrap();
            tiers.push(l.tier_of(pfn));
        }
        assert_eq!(&tiers[..4], &[Tier::Tier1; 4]);
        assert_eq!(&tiers[4..], &[Tier::Tier2; 8]);
        assert_eq!(fa.alloc_first_touch(), Err(OutOfMemory { tier: None }));
    }

    #[test]
    fn frames_handed_out_in_ascending_order() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let a = fa.alloc_in(Tier::Tier2).unwrap();
        let b = fa.alloc_in(Tier::Tier2).unwrap();
        assert!(b.0 > a.0);
        assert_eq!(a, l.first_frame(Tier::Tier2));
    }

    #[test]
    fn free_returns_frame_to_correct_tier() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let t1 = fa.alloc_in(Tier::Tier1).unwrap();
        for _ in 0..3 {
            fa.alloc_in(Tier::Tier1).unwrap();
        }
        assert_eq!(fa.free_in(Tier::Tier1), 0);
        fa.free(&l, t1);
        assert_eq!(fa.free_in(Tier::Tier1), 1);
        assert_eq!(fa.alloc_in(Tier::Tier1).unwrap(), t1);
    }

    #[test]
    fn allocation_counters_track() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        assert_eq!(fa.allocated_in(Tier::Tier1), 0);
        let p = fa.alloc_in(Tier::Tier1).unwrap();
        assert_eq!(fa.allocated_in(Tier::Tier1), 1);
        fa.free(&l, p);
        assert_eq!(fa.allocated_in(Tier::Tier1), 0);
    }

    #[test]
    fn huge_allocation_takes_contiguous_run_from_the_top() {
        let l = TieredMemory::with_frames(4, 1200);
        let mut fa = FrameAllocator::new(&l);
        let base = fa.alloc_huge_in(Tier::Tier2).unwrap();
        // Top of tier 2 is frame 4+1200-1 = 1203; run base = 1203-511.
        assert_eq!(base, Pfn(1203 - 511));
        assert_eq!(fa.allocated_in(Tier::Tier2), 512);
        // 4 KiB allocations still come from the bottom.
        let small = fa.alloc_in(Tier::Tier2).unwrap();
        assert_eq!(small, Pfn(4));
        // Free the run; another huge allocation must succeed and be a
        // valid contiguous run within the tier.
        fa.free_huge(&l, base);
        assert_eq!(fa.allocated_in(Tier::Tier2), 1, "only the 4 KiB page");
        let base2 = fa.alloc_huge_in(Tier::Tier2).unwrap();
        assert!(base2.0 >= 4 && base2.0 + 511 <= 1203);
        assert_eq!(fa.allocated_in(Tier::Tier2), 513);
    }

    #[test]
    fn huge_allocation_fails_without_contiguity() {
        let l = TieredMemory::with_frames(600, 0);
        let mut fa = FrameAllocator::new(&l);
        // Punch a hole at the top: take the highest frame via a full drain
        // of everything (easier: allocate all, free all but one at top).
        let mut all = Vec::new();
        while let Ok(p) = fa.alloc_in(Tier::Tier1) {
            all.push(p);
        }
        // Free everything except the topmost frame.
        for &p in all.iter().filter(|p| p.0 != 599) {
            fa.free(&l, p);
        }
        assert_eq!(fa.alloc_huge_in(Tier::Tier1), None, "hole breaks the run");
    }

    #[test]
    fn huge_allocation_spans_fresh_and_recycled_frames() {
        // Mixed-run case: part of the 512-run is fresh, the rest was freed
        // back in descending order so the dense front run stays unbroken.
        let l = TieredMemory::with_frames(1024, 0);
        let mut fa = FrameAllocator::new(&l);
        for _ in 0..600 {
            fa.alloc_in(Tier::Tier1).unwrap();
        }
        // Recycle 599..=400 descending: the dense list head is then
        // [1023..600 fresh] ++ [599..400 recycled], one contiguous run.
        for p in (400..600u64).rev() {
            fa.free(&l, Pfn(p));
        }
        let base = fa.alloc_huge_in(Tier::Tier1).unwrap();
        assert_eq!(base, Pfn(1023 - 511));
        assert_eq!(fa.free_in(Tier::Tier1), 112);
        // The recycled remainder still pops LIFO.
        assert_eq!(fa.alloc_in(Tier::Tier1).unwrap(), Pfn(400));
        // A recycled head that does NOT continue the fresh run fails.
        let l2 = TieredMemory::with_frames(1024, 0);
        let mut fa2 = FrameAllocator::new(&l2);
        for _ in 0..256 {
            fa2.alloc_in(Tier::Tier1).unwrap();
        }
        let hb = fa2.alloc_huge_in(Tier::Tier1).unwrap(); // fresh top run
        fa2.free_huge(&l2, hb);
        // Dense head is now [511..256 fresh] ++ [1023..512 recycled]:
        // broken at the seam, so no huge run is available.
        assert_eq!(fa2.alloc_huge_in(Tier::Tier1), None);
    }

    #[test]
    fn terabyte_tier_construction_is_lazy() {
        // 2^30 frames per tier (4 TiB each of 4 KiB pages): building the
        // allocator must not materialize per-frame state.
        let l = TieredMemory::with_frames(1 << 30, 1 << 30);
        let mut fa = FrameAllocator::new(&l);
        assert_eq!(fa.free_in(Tier::Tier1), 1 << 30);
        let p = fa.alloc_in(Tier::Tier1).unwrap();
        assert_eq!(p, l.first_frame(Tier::Tier1));
        let huge = fa.alloc_huge_in(Tier::Tier2).unwrap();
        assert_eq!(huge.0 + 511, l.first_frame(Tier::Tier2).0 + (1 << 30) - 1);
    }

    #[test]
    fn first_touch_waterfalls_through_three_tiers() {
        use crate::tier::{MemTopology, TierSpec};
        let l =
            MemTopology::from_specs(vec![TierSpec::dram(2), TierSpec::cxl(3), TierSpec::nvm(4)]);
        let mut fa = FrameAllocator::new(&l);
        assert_eq!(fa.num_tiers(), 3);
        let mut tiers = Vec::new();
        for _ in 0..9 {
            tiers.push(l.tier_of(fa.alloc_first_touch().unwrap()));
        }
        assert_eq!(&tiers[..2], &[Tier::Tier1; 2]);
        assert_eq!(&tiers[2..5], &[Tier::Tier2; 3]);
        assert_eq!(&tiers[5..], &[Tier::Tier3; 4]);
        assert_eq!(fa.alloc_first_touch(), Err(OutOfMemory { tier: None }));
    }

    #[test]
    fn tier_exhaustion_is_reported_per_tier() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        for _ in 0..4 {
            fa.alloc_in(Tier::Tier1).unwrap();
        }
        assert_eq!(
            fa.alloc_in(Tier::Tier1),
            Err(OutOfMemory {
                tier: Some(Tier::Tier1)
            })
        );
        assert!(fa.alloc_in(Tier::Tier2).is_ok());
    }
}
