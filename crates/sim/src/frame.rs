//! Physical frame allocation across tiers.
//!
//! The allocator implements the paper's baseline placement — "a NUMA-like,
//! first-come-first-allocate tiered-memory policy" (§VI-C): allocations are
//! satisfied from tier 1 until it is exhausted, then spill to tier 2. Frames
//! freed by migration return to their tier's free list so the page mover can
//! exchange hot and cold pages between tiers.

use crate::addr::Pfn;
use crate::tier::{Tier, TieredMemory};

/// Frames per 2 MiB huge page.
pub const HUGE_FRAMES: u64 = 512;

/// Free-list frame allocator over the two-tier physical space.
pub struct FrameAllocator {
    free: [Vec<Pfn>; 2],
    allocated: [u64; 2],
}

/// Error returned when no frame is available.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OutOfMemory {
    /// The tier that was requested (or `None` for an any-tier request).
    pub tier: Option<Tier>,
}

impl std::fmt::Display for OutOfMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.tier {
            Some(t) => write!(f, "out of physical frames in {t:?}"),
            None => write!(f, "out of physical frames in all tiers"),
        }
    }
}

impl std::error::Error for OutOfMemory {}

impl FrameAllocator {
    /// Build an allocator with every frame of `layout` free.
    ///
    /// Free lists are kept so that frames are handed out in ascending
    /// address order, which makes allocation deterministic and heatmaps
    /// (Figs. 3–4) readable.
    pub fn new(layout: &TieredMemory) -> Self {
        let mut free = [Vec::new(), Vec::new()];
        for tier in Tier::ALL {
            let first = layout.first_frame(tier).0;
            let count = layout.spec(tier).frames;
            // Stored reversed so `pop()` yields ascending PFNs.
            free[tier.index()] = (first..first + count).rev().map(Pfn).collect();
        }
        Self {
            free,
            allocated: [0, 0],
        }
    }

    /// Allocate from a specific tier.
    pub fn alloc_in(&mut self, tier: Tier) -> Result<Pfn, OutOfMemory> {
        match self.free[tier.index()].pop() {
            Some(pfn) => {
                self.allocated[tier.index()] += 1;
                Ok(pfn)
            }
            None => Err(OutOfMemory { tier: Some(tier) }),
        }
    }

    /// First-come-first-allocate: tier 1 first, spill to tier 2.
    pub fn alloc_first_touch(&mut self) -> Result<Pfn, OutOfMemory> {
        self.alloc_in(Tier::Tier1)
            .or_else(|_| self.alloc_in(Tier::Tier2))
            .map_err(|_| OutOfMemory { tier: None })
    }

    /// Allocate a contiguous 512-frame run for a 2 MiB huge page from a
    /// specific tier. Returns the base (lowest) frame. Contiguous runs are
    /// taken from the top of the tier's address range, where the free list
    /// stays unfragmented; fragmentation makes this fail gracefully
    /// (`None`), upon which callers fall back to 4 KiB pages — exactly the
    /// kernel's THP behavior.
    pub fn alloc_huge_in(&mut self, tier: Tier) -> Option<Pfn> {
        let free = &mut self.free[tier.index()];
        if (free.len() as u64) < HUGE_FRAMES {
            return None;
        }
        // The free list is kept descending (pop() yields ascending PFNs),
        // so the highest frames sit at the front. Check the front run.
        let top = free[0].0;
        for i in 0..HUGE_FRAMES as usize {
            if free.get(i).map(|p| p.0) != top.checked_sub(i as u64) {
                return None;
            }
        }
        let base = Pfn(top - (HUGE_FRAMES - 1));
        free.drain(0..HUGE_FRAMES as usize);
        self.allocated[tier.index()] += HUGE_FRAMES;
        Some(base)
    }

    /// Huge first-touch: tier 1 first, spill to tier 2.
    pub fn alloc_huge_first_touch(&mut self) -> Option<Pfn> {
        self.alloc_huge_in(Tier::Tier1)
            .or_else(|| self.alloc_huge_in(Tier::Tier2))
    }

    /// Return a huge page's 512 frames to their tier's free list.
    pub fn free_huge(&mut self, layout: &TieredMemory, base: Pfn) {
        let tier = layout.tier_of(base);
        self.allocated[tier.index()] -= HUGE_FRAMES;
        // Push descending so the front of the list remains the highest
        // frames (preserving future huge allocability when possible).
        for i in (0..HUGE_FRAMES).rev() {
            self.free[tier.index()].push(Pfn(base.0 + i));
        }
    }

    /// Return a frame to its tier's free list.
    ///
    /// The caller passes the layout so the frame is filed under the right
    /// tier; a frame freed twice is a logic error and panics in debug builds.
    pub fn free(&mut self, layout: &TieredMemory, pfn: Pfn) {
        let tier = layout.tier_of(pfn);
        debug_assert!(
            !self.free[tier.index()].contains(&pfn),
            "double free of {pfn:?}"
        );
        self.allocated[tier.index()] -= 1;
        self.free[tier.index()].push(pfn);
    }

    /// Frames currently free in `tier`.
    pub fn free_in(&self, tier: Tier) -> u64 {
        self.free[tier.index()].len() as u64
    }

    /// Frames currently allocated from `tier`.
    pub fn allocated_in(&self, tier: Tier) -> u64 {
        self.allocated[tier.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layout() -> TieredMemory {
        TieredMemory::with_frames(4, 8)
    }

    #[test]
    fn first_touch_fills_tier1_then_spills() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let mut tiers = Vec::new();
        for _ in 0..12 {
            let pfn = fa.alloc_first_touch().unwrap();
            tiers.push(l.tier_of(pfn));
        }
        assert_eq!(&tiers[..4], &[Tier::Tier1; 4]);
        assert_eq!(&tiers[4..], &[Tier::Tier2; 8]);
        assert_eq!(fa.alloc_first_touch(), Err(OutOfMemory { tier: None }));
    }

    #[test]
    fn frames_handed_out_in_ascending_order() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let a = fa.alloc_in(Tier::Tier2).unwrap();
        let b = fa.alloc_in(Tier::Tier2).unwrap();
        assert!(b.0 > a.0);
        assert_eq!(a, l.first_frame(Tier::Tier2));
    }

    #[test]
    fn free_returns_frame_to_correct_tier() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        let t1 = fa.alloc_in(Tier::Tier1).unwrap();
        for _ in 0..3 {
            fa.alloc_in(Tier::Tier1).unwrap();
        }
        assert_eq!(fa.free_in(Tier::Tier1), 0);
        fa.free(&l, t1);
        assert_eq!(fa.free_in(Tier::Tier1), 1);
        assert_eq!(fa.alloc_in(Tier::Tier1).unwrap(), t1);
    }

    #[test]
    fn allocation_counters_track() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        assert_eq!(fa.allocated_in(Tier::Tier1), 0);
        let p = fa.alloc_in(Tier::Tier1).unwrap();
        assert_eq!(fa.allocated_in(Tier::Tier1), 1);
        fa.free(&l, p);
        assert_eq!(fa.allocated_in(Tier::Tier1), 0);
    }

    #[test]
    fn huge_allocation_takes_contiguous_run_from_the_top() {
        let l = TieredMemory::with_frames(4, 1200);
        let mut fa = FrameAllocator::new(&l);
        let base = fa.alloc_huge_in(Tier::Tier2).unwrap();
        // Top of tier 2 is frame 4+1200-1 = 1203; run base = 1203-511.
        assert_eq!(base, Pfn(1203 - 511));
        assert_eq!(fa.allocated_in(Tier::Tier2), 512);
        // 4 KiB allocations still come from the bottom.
        let small = fa.alloc_in(Tier::Tier2).unwrap();
        assert_eq!(small, Pfn(4));
        // Free the run; another huge allocation must succeed and be a
        // valid contiguous run within the tier.
        fa.free_huge(&l, base);
        assert_eq!(fa.allocated_in(Tier::Tier2), 1, "only the 4 KiB page");
        let base2 = fa.alloc_huge_in(Tier::Tier2).unwrap();
        assert!(base2.0 >= 4 && base2.0 + 511 <= 1203);
        assert_eq!(fa.allocated_in(Tier::Tier2), 513);
    }

    #[test]
    fn huge_allocation_fails_without_contiguity() {
        let l = TieredMemory::with_frames(600, 0);
        let mut fa = FrameAllocator::new(&l);
        // Punch a hole at the top: take the highest frame via a full drain
        // of everything (easier: allocate all, free all but one at top).
        let mut all = Vec::new();
        while let Ok(p) = fa.alloc_in(Tier::Tier1) {
            all.push(p);
        }
        // Free everything except the topmost frame.
        for &p in all.iter().filter(|p| p.0 != 599) {
            fa.free(&l, p);
        }
        assert_eq!(fa.alloc_huge_in(Tier::Tier1), None, "hole breaks the run");
    }

    #[test]
    fn tier_exhaustion_is_reported_per_tier() {
        let l = layout();
        let mut fa = FrameAllocator::new(&l);
        for _ in 0..4 {
            fa.alloc_in(Tier::Tier1).unwrap();
        }
        assert_eq!(
            fa.alloc_in(Tier::Tier1),
            Err(OutOfMemory {
                tier: Some(Tier::Tier1)
            })
        );
        assert!(fa.alloc_in(Tier::Tier2).is_ok());
    }
}
