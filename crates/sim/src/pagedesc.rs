//! Page descriptors: the per-frame metadata the paper's kernel module adds.
//!
//! TMP "stores the data of a page by extending its page descriptor (PD)
//! structure" and uses `phys_to_page()` to find the PD from a physical
//! address (§III-B-1). We model the same thing, but where the kernel's
//! `mem_map` is a dense array, this table is *sparse*: descriptors live in
//! fixed-size frame chunks materialized on first touch (the
//! `SPARSEMEM`-section analogue), so descriptor memory scales with the
//! resident/touched frame set rather than with configured capacity — the
//! property that lets terabyte-class footprints fit. Each descriptor
//! accumulates the A-bit observations and trace samples that the two
//! profiling drivers deliver, plus a backlink to the logical page
//! (`rmap`-style) so migration can move stats with the page.

use crate::addr::{Pfn, Vpn};
use crate::tlb::Pid;
use tmprof_obs::metrics::{self, Metric};

/// A stable identity for a logical page: (process, virtual page).
///
/// Physical frames change under migration; the logical page is what policies
/// reason about across epochs. Packs into a `u64` for use as a dense map key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    pub pid: Pid,
    pub vpn: Vpn,
}

impl PageKey {
    /// Pack into a single word. VPNs fit in 36 bits (48-bit VA, 4 KiB pages).
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.vpn.0 < (1 << 36));
        ((self.pid as u64) << 36) | self.vpn.0
    }

    /// Reverse of [`PageKey::pack`].
    #[inline]
    pub fn unpack(raw: u64) -> Self {
        Self {
            pid: (raw >> 36) as Pid,
            vpn: Vpn(raw & ((1 << 36) - 1)),
        }
    }
}

/// Per-frame profiling state (the extended `struct page`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PageDesc {
    /// Which logical page currently occupies this frame (reverse mapping).
    pub owner: Option<PageKey>,
    /// A-bit observations accumulated in the current epoch. Wide on
    /// purpose: the old `u32` + `saturating_add` pinned every page past
    /// ~4.3e9 observations at the same rank, freezing hotness ordering
    /// exactly on the longest-lived pages.
    pub abit_epoch: u64,
    /// Trace (IBS/PEBS) samples accumulated in the current epoch.
    pub trace_epoch: u64,
    /// Lifetime A-bit observations.
    pub abit_total: u64,
    /// Lifetime trace samples.
    pub trace_total: u64,
    /// Epoch index when either counter was last bumped.
    pub last_touched_epoch: u32,
}

impl PageDesc {
    /// The paper's rank rule (§IV step 1 + Fig. 2): the two sample
    /// populations are the same order of magnitude, so hotness is their sum.
    #[inline]
    pub fn epoch_rank(&self) -> u64 {
        self.abit_epoch + self.trace_epoch
    }

    /// Zero the per-epoch counters (called at each epoch horizon).
    #[inline]
    pub fn reset_epoch(&mut self) {
        self.abit_epoch = 0;
        self.trace_epoch = 0;
    }
}

/// The descriptor of a never-touched frame (what a dense table would hold).
const FREE: PageDesc = PageDesc {
    owner: None,
    abit_epoch: 0,
    trace_epoch: 0,
    abit_total: 0,
    trace_total: 0,
    last_touched_epoch: 0,
};

/// The machine-wide descriptor table (`mem_map` analogue), chunked sparse.
///
/// Capacity is declared up front (so out-of-range PFNs still panic exactly
/// like the dense array did), but backing storage is a vector of
/// `Option<chunk>` slots: a chunk of [`PageDescTable::chunk_frames`]
/// descriptors is allocated the first time any frame in it is written.
/// Reads of untouched frames return a reference to the shared all-zero
/// descriptor without allocating. Iteration order (chunk-ascending, then
/// frame-ascending) is identical to the dense array's PFN order.
pub struct PageDescTable {
    chunks: Vec<Option<Box<[PageDesc]>>>,
    /// Frames per chunk; always a power of two.
    chunk_frames: usize,
    shift: u32,
    total_frames: u64,
    resident: u64,
    /// Frames that gained per-epoch observations since the last horizon
    /// (the epoch-close "dirty list"). Maintained by [`Self::bump_abit`],
    /// [`Self::bump_trace`] and [`Self::migrate`] so that profile capture
    /// and the epoch reset touch only observed frames instead of walking
    /// every descriptor. May contain stale entries (a frame whose stats
    /// migrated away) and, after migration, duplicates; consumers filter
    /// on the counters and deduplicate. Invariant: every frame with a
    /// nonzero per-epoch counter is present. Code that writes the epoch
    /// counters directly through [`Self::get_mut`] (tests only) bypasses
    /// the list and must not rely on dirty-list-based capture/reset.
    dirty: Vec<Pfn>,
}

/// Default frames per chunk: 4096 frames = 16 MiB of simulated memory per
/// ~0.25 MiB chunk of descriptors.
pub const DEFAULT_CHUNK: usize = 4096;

/// Env knob (registered in `core/src/knobs.rs`) overriding the chunk size;
/// must be a positive power of two, else the default is kept.
pub const CHUNK_ENV: &str = "TMPROF_DESC_CHUNK";

fn chunk_frames_from_env() -> usize {
    // tmprof-lint: allow(knob-flow) — sim reads the chunk-size knob directly to avoid depending on core; the name is pinned by the knob-registry sync test
    std::env::var(CHUNK_ENV)
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|n| n.is_power_of_two())
        .unwrap_or(DEFAULT_CHUNK)
}

impl PageDescTable {
    /// Cover `total_frames` frames with chunk size taken from
    /// `TMPROF_DESC_CHUNK` (default [`DEFAULT_CHUNK`]). No descriptor
    /// storage is allocated until a frame is first written.
    pub fn new(total_frames: u64) -> Self {
        Self::with_chunk_frames(total_frames, chunk_frames_from_env())
    }

    /// As [`Self::new`] with an explicit chunk size (must be a power of
    /// two); used by tests and benches to pin the geometry.
    pub fn with_chunk_frames(total_frames: u64, chunk_frames: usize) -> Self {
        assert!(chunk_frames.is_power_of_two());
        let n_chunks = (total_frames as usize).div_ceil(chunk_frames);
        let mut chunks = Vec::with_capacity(n_chunks);
        chunks.resize_with(n_chunks, || None);
        Self {
            chunks,
            chunk_frames,
            shift: chunk_frames.trailing_zeros(),
            total_frames,
            resident: 0,
            dirty: Vec::new(),
        }
    }

    /// Number of frames covered (declared capacity, not resident storage).
    pub fn len(&self) -> usize {
        self.total_frames as usize
    }

    /// True if the table covers no frames.
    pub fn is_empty(&self) -> bool {
        self.total_frames == 0
    }

    /// Chunks materialized so far.
    pub fn resident_chunks(&self) -> u64 {
        self.resident
    }

    /// Frames per chunk.
    pub fn chunk_frames(&self) -> usize {
        self.chunk_frames
    }

    /// `phys_to_page()`: descriptor for a frame. Reading a frame in an
    /// untouched chunk returns the shared zero descriptor (no allocation).
    #[inline]
    pub fn get(&self, pfn: Pfn) -> &PageDesc {
        assert!(pfn.0 < self.total_frames, "pfn {pfn:?} out of range");
        match &self.chunks[(pfn.0 >> self.shift) as usize] {
            Some(chunk) => &chunk[pfn.0 as usize & (self.chunk_frames - 1)],
            None => &FREE,
        }
    }

    /// Mutable `phys_to_page()`; materializes the covering chunk on first
    /// touch.
    #[inline]
    pub fn get_mut(&mut self, pfn: Pfn) -> &mut PageDesc {
        assert!(pfn.0 < self.total_frames, "pfn {pfn:?} out of range");
        let ci = (pfn.0 >> self.shift) as usize;
        if self.chunks[ci].is_none() {
            self.chunks[ci] = Some(vec![FREE; self.chunk_frames].into_boxed_slice());
            self.resident += 1;
            metrics::set(Metric::SimDescChunksResident, self.resident);
        }
        match &mut self.chunks[ci] {
            Some(chunk) => &mut chunk[pfn.0 as usize & (self.chunk_frames - 1)],
            // The chunk was materialized just above.
            // tmprof-lint: allow(panic-reachability) — the chunk was materialized by the branch just above; get_mut cannot miss
            None => unreachable!(),
        }
    }

    /// Record that frame `pfn` now backs logical page `key`.
    pub fn set_owner(&mut self, pfn: Pfn, key: PageKey) {
        self.get_mut(pfn).owner = Some(key);
    }

    /// Record an A-bit observation against a frame.
    #[inline]
    pub fn bump_abit(&mut self, pfn: Pfn, epoch: u32) {
        let d = self.get_mut(pfn);
        let first_this_epoch = d.abit_epoch == 0 && d.trace_epoch == 0;
        d.abit_epoch += 1;
        d.abit_total += 1;
        d.last_touched_epoch = epoch;
        if first_this_epoch {
            self.dirty.push(pfn);
        }
    }

    /// Record a trace sample against a frame.
    #[inline]
    pub fn bump_trace(&mut self, pfn: Pfn, epoch: u32) {
        let d = self.get_mut(pfn);
        let first_this_epoch = d.abit_epoch == 0 && d.trace_epoch == 0;
        d.trace_epoch += 1;
        d.trace_total += 1;
        d.last_touched_epoch = epoch;
        if first_this_epoch {
            self.dirty.push(pfn);
        }
    }

    /// Move a page's descriptor state from `from` to `to` (page migration
    /// carries the accumulated statistics with the data).
    pub fn migrate(&mut self, from: Pfn, to: Pfn) {
        let src = std::mem::take(self.get_mut(from));
        let observed = src.abit_epoch > 0 || src.trace_epoch > 0;
        *self.get_mut(to) = src;
        // The stats moved with the page: the destination frame must be on
        // the dirty list. `from`'s entry goes stale (its counters are now
        // zero) and is filtered out at capture/reset time.
        if observed {
            self.dirty.push(to);
        }
    }

    /// Reset per-epoch counters (epoch horizon). Walks only the dirty
    /// list — O(touched pages), not O(total frames).
    pub fn reset_epoch(&mut self) {
        let dirty = std::mem::take(&mut self.dirty);
        for &pfn in &dirty {
            self.get_mut(pfn).reset_epoch();
        }
    }

    /// Frames with per-epoch observations, ascending and deduplicated
    /// (the dirty list with stale and duplicate entries filtered out).
    /// Iterating this is equivalent to a full-table scan for any consumer
    /// that only looks at frames with nonzero epoch counters.
    pub fn touched_frames(&self) -> Vec<Pfn> {
        let mut v: Vec<Pfn> = self
            .dirty
            .iter()
            .copied()
            .filter(|&pfn| {
                let d = self.get(pfn);
                d.abit_epoch > 0 || d.trace_epoch > 0
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterate over (frame, descriptor) pairs with a live owner, ascending
    /// by PFN — only resident chunks are visited, so this is
    /// O(touched frames), not O(declared capacity).
    pub fn iter_owned(&self) -> impl Iterator<Item = (Pfn, &PageDesc)> + '_ {
        let chunk_frames = self.chunk_frames;
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(ci, c)| c.as_deref().map(|c| (ci, c)))
            .flat_map(move |(ci, chunk)| {
                let base = (ci * chunk_frames) as u64;
                chunk
                    .iter()
                    .enumerate()
                    .filter(|(_, d)| d.owner.is_some())
                    .map(move |(i, d)| (Pfn(base + i as u64), d))
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let key = PageKey {
            pid: 12345,
            vpn: Vpn(0xF_FFFF_FFFF),
        };
        assert_eq!(PageKey::unpack(key.pack()), key);
    }

    #[test]
    fn pack_distinct_for_distinct_pages() {
        let a = PageKey {
            pid: 1,
            vpn: Vpn(2),
        };
        let b = PageKey {
            pid: 2,
            vpn: Vpn(1),
        };
        assert_ne!(a.pack(), b.pack());
    }

    #[test]
    fn bump_accumulates_epoch_and_total() {
        let mut t = PageDescTable::new(4);
        t.bump_abit(Pfn(2), 0);
        t.bump_abit(Pfn(2), 0);
        t.bump_trace(Pfn(2), 0);
        let d = t.get(Pfn(2));
        assert_eq!(d.abit_epoch, 2);
        assert_eq!(d.trace_epoch, 1);
        assert_eq!(d.epoch_rank(), 3);
        assert_eq!(d.abit_total, 2);
    }

    #[test]
    fn rank_keeps_moving_past_the_old_u32_saturation_horizon() {
        // Regression: the epoch counters used to be u32 with
        // `saturating_add`, so two pages that both crossed ~4.3e9
        // observations pinned at the same rank forever — the hottest pages
        // in the system became indistinguishable. Pre-load the counters at
        // the old ceiling (bumping 4e9 times in a test is not viable) and
        // check further bumps still separate them.
        let mut t = PageDescTable::new(2);
        t.get_mut(Pfn(0)).abit_epoch = u32::MAX as u64;
        t.get_mut(Pfn(1)).abit_epoch = u32::MAX as u64;
        assert_eq!(t.get(Pfn(0)).epoch_rank(), t.get(Pfn(1)).epoch_rank());
        t.bump_abit(Pfn(1), 0);
        assert!(
            t.get(Pfn(1)).epoch_rank() > t.get(Pfn(0)).epoch_rank(),
            "a bump past the old ceiling must still change the ordering"
        );
        assert_eq!(t.get(Pfn(1)).epoch_rank(), u32::MAX as u64 + 1);
    }

    #[test]
    fn reset_epoch_keeps_totals() {
        let mut t = PageDescTable::new(2);
        t.bump_trace(Pfn(0), 0);
        t.reset_epoch();
        let d = t.get(Pfn(0));
        assert_eq!(d.trace_epoch, 0);
        assert_eq!(d.trace_total, 1);
    }

    #[test]
    fn migrate_moves_stats_and_clears_source() {
        let mut t = PageDescTable::new(4);
        let key = PageKey {
            pid: 7,
            vpn: Vpn(9),
        };
        t.set_owner(Pfn(1), key);
        t.bump_abit(Pfn(1), 3);
        t.migrate(Pfn(1), Pfn(3));
        assert_eq!(t.get(Pfn(3)).owner, Some(key));
        assert_eq!(t.get(Pfn(3)).abit_epoch, 1);
        assert_eq!(t.get(Pfn(1)).owner, None);
        assert_eq!(t.get(Pfn(1)).abit_epoch, 0);
    }

    #[test]
    fn iter_owned_skips_free_frames() {
        let mut t = PageDescTable::new(8);
        t.set_owner(
            Pfn(1),
            PageKey {
                pid: 1,
                vpn: Vpn(1),
            },
        );
        t.set_owner(
            Pfn(5),
            PageKey {
                pid: 1,
                vpn: Vpn(2),
            },
        );
        let frames: Vec<Pfn> = t.iter_owned().map(|(p, _)| p).collect();
        assert_eq!(frames, vec![Pfn(1), Pfn(5)]);
    }

    #[test]
    fn touched_frames_covers_exactly_the_observed_frames() {
        let mut t = PageDescTable::new(16);
        t.bump_abit(Pfn(3), 0);
        t.bump_abit(Pfn(3), 0); // second bump must not duplicate
        t.bump_trace(Pfn(7), 0);
        t.bump_trace(Pfn(1), 0);
        assert_eq!(t.touched_frames(), vec![Pfn(1), Pfn(3), Pfn(7)]);
        t.reset_epoch();
        assert!(t.touched_frames().is_empty());
        // Counters actually cleared, and fresh bumps repopulate the list.
        assert_eq!(t.get(Pfn(3)).abit_epoch, 0);
        t.bump_trace(Pfn(3), 1);
        assert_eq!(t.touched_frames(), vec![Pfn(3)]);
    }

    #[test]
    fn migrate_keeps_the_dirty_list_consistent() {
        let mut t = PageDescTable::new(8);
        let key = PageKey {
            pid: 1,
            vpn: Vpn(4),
        };
        t.set_owner(Pfn(2), key);
        t.bump_abit(Pfn(2), 0);
        t.migrate(Pfn(2), Pfn(6));
        // The stats moved: the destination is touched, the source is stale.
        assert_eq!(t.touched_frames(), vec![Pfn(6)]);
        t.reset_epoch();
        assert_eq!(t.get(Pfn(6)).abit_epoch, 0);
        assert_eq!(t.get(Pfn(6)).abit_total, 1, "totals survive the horizon");
        assert!(t.touched_frames().is_empty());
    }

    #[test]
    fn reset_epoch_via_dirty_list_matches_full_reset() {
        let mut t = PageDescTable::new(64);
        for pfn in [0u64, 5, 9, 31, 63] {
            t.bump_abit(Pfn(pfn), 0);
            t.bump_trace(Pfn(pfn), 0);
        }
        t.reset_epoch();
        for pfn in 0..64u64 {
            let d = t.get(Pfn(pfn));
            assert_eq!(d.abit_epoch, 0);
            assert_eq!(d.trace_epoch, 0);
        }
    }

    #[test]
    fn chunks_materialize_only_on_write() {
        // Terabyte-class capacity (2^30 frames = 4 TiB of 4 KiB pages),
        // far beyond what a dense Vec<PageDesc> could hold in a test:
        // nothing is allocated until a frame is written, reads of cold
        // frames see the zero descriptor, and one write materializes
        // exactly one chunk.
        let mut t = PageDescTable::with_chunk_frames(1 << 30, 4096);
        assert_eq!(t.resident_chunks(), 0);
        assert_eq!(t.len(), 1 << 30);
        assert_eq!(t.get(Pfn((1 << 30) - 1)).epoch_rank(), 0);
        assert_eq!(t.resident_chunks(), 0, "reads must not allocate");
        t.bump_abit(Pfn(1 << 29), 0);
        assert_eq!(t.resident_chunks(), 1);
        t.bump_abit(Pfn((1 << 29) + 1), 0);
        assert_eq!(t.resident_chunks(), 1, "same chunk re-used");
        t.bump_trace(Pfn(0), 0);
        assert_eq!(t.resident_chunks(), 2);
        assert_eq!(
            t.touched_frames(),
            vec![Pfn(0), Pfn(1 << 29), Pfn((1 << 29) + 1)]
        );
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_pfn_still_panics() {
        // The dense array bounds-checked every access; the sparse table
        // must keep that contract rather than silently growing.
        let t = PageDescTable::with_chunk_frames(100, 64);
        let _ = t.get(Pfn(100));
    }

    #[test]
    fn capacity_not_a_chunk_multiple_covers_the_tail() {
        let mut t = PageDescTable::with_chunk_frames(100, 64);
        t.bump_abit(Pfn(99), 0);
        assert_eq!(t.get(Pfn(99)).abit_epoch, 1);
        assert_eq!(t.resident_chunks(), 1);
    }

    #[test]
    fn sparse_table_matches_dense_model_under_random_ops() {
        // Drive the sparse table and a plain Vec<PageDesc> model through
        // the same deterministic op stream and require identical state at
        // every observation point: per-frame descriptors, touched_frames,
        // and iter_owned order.
        const FRAMES: u64 = 1024;
        let mut t = PageDescTable::with_chunk_frames(FRAMES, 64);
        let mut model = vec![FREE; FRAMES as usize];
        let mut rng = crate::rng::Rng::new(0xDECAF);
        for round in 0..4u32 {
            for _ in 0..500 {
                let pfn = Pfn(rng.next_u64() % FRAMES);
                match rng.next_u64() % 4 {
                    0 => {
                        t.bump_abit(pfn, round);
                        let d = &mut model[pfn.0 as usize];
                        d.abit_epoch += 1;
                        d.abit_total += 1;
                        d.last_touched_epoch = round;
                    }
                    1 => {
                        t.bump_trace(pfn, round);
                        let d = &mut model[pfn.0 as usize];
                        d.trace_epoch += 1;
                        d.trace_total += 1;
                        d.last_touched_epoch = round;
                    }
                    2 => {
                        let key = PageKey {
                            pid: 1,
                            vpn: Vpn(pfn.0),
                        };
                        t.set_owner(pfn, key);
                        model[pfn.0 as usize].owner = Some(key);
                    }
                    _ => {
                        let to = Pfn(rng.next_u64() % FRAMES);
                        if to != pfn {
                            t.migrate(pfn, to);
                            model[to.0 as usize] = std::mem::take(&mut model[pfn.0 as usize]);
                        }
                    }
                }
            }
            let mut expect_touched: Vec<Pfn> = (0..FRAMES)
                .filter(|&p| {
                    let d = &model[p as usize];
                    d.abit_epoch > 0 || d.trace_epoch > 0
                })
                .map(Pfn)
                .collect();
            expect_touched.sort_unstable();
            assert_eq!(t.touched_frames(), expect_touched, "round {round}");
            let expect_owned: Vec<Pfn> = (0..FRAMES)
                .filter(|&p| model[p as usize].owner.is_some())
                .map(Pfn)
                .collect();
            let got_owned: Vec<Pfn> = t.iter_owned().map(|(p, _)| p).collect();
            assert_eq!(got_owned, expect_owned, "round {round}");
            for p in 0..FRAMES {
                let (got, want) = (t.get(Pfn(p)), &model[p as usize]);
                assert_eq!(got.abit_epoch, want.abit_epoch, "round {round} pfn {p}");
                assert_eq!(got.trace_epoch, want.trace_epoch);
                assert_eq!(got.abit_total, want.abit_total);
                assert_eq!(got.trace_total, want.trace_total);
                assert_eq!(got.owner, want.owner);
            }
            t.reset_epoch();
            for d in &mut model {
                d.reset_epoch();
            }
        }
    }
}
