//! Page descriptors: the per-frame metadata the paper's kernel module adds.
//!
//! TMP "stores the data of a page by extending its page descriptor (PD)
//! structure" and uses `phys_to_page()` to find the PD from a physical
//! address (§III-B-1). We model the same thing: a flat array indexed by PFN,
//! each element accumulating the A-bit observations and trace samples that
//! the two profiling drivers deliver, plus a backlink to the logical page
//! (`rmap`-style) so migration can move stats with the page.

use crate::addr::{Pfn, Vpn};
use crate::tlb::Pid;

/// A stable identity for a logical page: (process, virtual page).
///
/// Physical frames change under migration; the logical page is what policies
/// reason about across epochs. Packs into a `u64` for use as a dense map key.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageKey {
    pub pid: Pid,
    pub vpn: Vpn,
}

impl PageKey {
    /// Pack into a single word. VPNs fit in 36 bits (48-bit VA, 4 KiB pages).
    #[inline]
    pub fn pack(self) -> u64 {
        debug_assert!(self.vpn.0 < (1 << 36));
        ((self.pid as u64) << 36) | self.vpn.0
    }

    /// Reverse of [`PageKey::pack`].
    #[inline]
    pub fn unpack(raw: u64) -> Self {
        Self {
            pid: (raw >> 36) as Pid,
            vpn: Vpn(raw & ((1 << 36) - 1)),
        }
    }
}

/// Per-frame profiling state (the extended `struct page`).
#[derive(Clone, Copy, Debug, Default)]
pub struct PageDesc {
    /// Which logical page currently occupies this frame (reverse mapping).
    pub owner: Option<PageKey>,
    /// A-bit observations accumulated in the current epoch. Wide on
    /// purpose: the old `u32` + `saturating_add` pinned every page past
    /// ~4.3e9 observations at the same rank, freezing hotness ordering
    /// exactly on the longest-lived pages.
    pub abit_epoch: u64,
    /// Trace (IBS/PEBS) samples accumulated in the current epoch.
    pub trace_epoch: u64,
    /// Lifetime A-bit observations.
    pub abit_total: u64,
    /// Lifetime trace samples.
    pub trace_total: u64,
    /// Epoch index when either counter was last bumped.
    pub last_touched_epoch: u32,
}

impl PageDesc {
    /// The paper's rank rule (§IV step 1 + Fig. 2): the two sample
    /// populations are the same order of magnitude, so hotness is their sum.
    #[inline]
    pub fn epoch_rank(&self) -> u64 {
        self.abit_epoch + self.trace_epoch
    }

    /// Zero the per-epoch counters (called at each epoch horizon).
    #[inline]
    pub fn reset_epoch(&mut self) {
        self.abit_epoch = 0;
        self.trace_epoch = 0;
    }
}

/// The machine-wide descriptor array (`mem_map` analogue).
pub struct PageDescTable {
    descs: Vec<PageDesc>,
    /// Frames that gained per-epoch observations since the last horizon
    /// (the epoch-close "dirty list"). Maintained by [`Self::bump_abit`],
    /// [`Self::bump_trace`] and [`Self::migrate`] so that profile capture
    /// and the epoch reset touch only observed frames instead of walking
    /// every descriptor. May contain stale entries (a frame whose stats
    /// migrated away) and, after migration, duplicates; consumers filter
    /// on the counters and deduplicate. Invariant: every frame with a
    /// nonzero per-epoch counter is present. Code that writes the epoch
    /// counters directly through [`Self::get_mut`] (tests only) bypasses
    /// the list and must not rely on dirty-list-based capture/reset.
    dirty: Vec<Pfn>,
}

impl PageDescTable {
    /// One descriptor per physical frame.
    pub fn new(total_frames: u64) -> Self {
        Self {
            descs: vec![PageDesc::default(); total_frames as usize],
            dirty: Vec::new(),
        }
    }

    /// Number of frames covered.
    pub fn len(&self) -> usize {
        self.descs.len()
    }

    /// True if the table covers no frames.
    pub fn is_empty(&self) -> bool {
        self.descs.is_empty()
    }

    /// `phys_to_page()`: descriptor for a frame.
    #[inline]
    pub fn get(&self, pfn: Pfn) -> &PageDesc {
        &self.descs[pfn.0 as usize]
    }

    /// Mutable `phys_to_page()`.
    #[inline]
    pub fn get_mut(&mut self, pfn: Pfn) -> &mut PageDesc {
        &mut self.descs[pfn.0 as usize]
    }

    /// Record that frame `pfn` now backs logical page `key`.
    pub fn set_owner(&mut self, pfn: Pfn, key: PageKey) {
        self.get_mut(pfn).owner = Some(key);
    }

    /// Record an A-bit observation against a frame.
    #[inline]
    pub fn bump_abit(&mut self, pfn: Pfn, epoch: u32) {
        let d = &mut self.descs[pfn.0 as usize];
        let first_this_epoch = d.abit_epoch == 0 && d.trace_epoch == 0;
        d.abit_epoch += 1;
        d.abit_total += 1;
        d.last_touched_epoch = epoch;
        if first_this_epoch {
            self.dirty.push(pfn);
        }
    }

    /// Record a trace sample against a frame.
    #[inline]
    pub fn bump_trace(&mut self, pfn: Pfn, epoch: u32) {
        let d = &mut self.descs[pfn.0 as usize];
        let first_this_epoch = d.abit_epoch == 0 && d.trace_epoch == 0;
        d.trace_epoch += 1;
        d.trace_total += 1;
        d.last_touched_epoch = epoch;
        if first_this_epoch {
            self.dirty.push(pfn);
        }
    }

    /// Move a page's descriptor state from `from` to `to` (page migration
    /// carries the accumulated statistics with the data).
    pub fn migrate(&mut self, from: Pfn, to: Pfn) {
        let src = std::mem::take(self.get_mut(from));
        let observed = src.abit_epoch > 0 || src.trace_epoch > 0;
        *self.get_mut(to) = src;
        // The stats moved with the page: the destination frame must be on
        // the dirty list. `from`'s entry goes stale (its counters are now
        // zero) and is filtered out at capture/reset time.
        if observed {
            self.dirty.push(to);
        }
    }

    /// Reset per-epoch counters (epoch horizon). Walks only the dirty
    /// list — O(touched pages), not O(total frames).
    pub fn reset_epoch(&mut self) {
        for &pfn in &self.dirty {
            self.descs[pfn.0 as usize].reset_epoch();
        }
        self.dirty.clear();
    }

    /// Frames with per-epoch observations, ascending and deduplicated
    /// (the dirty list with stale and duplicate entries filtered out).
    /// Iterating this is equivalent to a full-table scan for any consumer
    /// that only looks at frames with nonzero epoch counters.
    pub fn touched_frames(&self) -> Vec<Pfn> {
        let mut v: Vec<Pfn> = self
            .dirty
            .iter()
            .copied()
            .filter(|&pfn| {
                let d = &self.descs[pfn.0 as usize];
                d.abit_epoch > 0 || d.trace_epoch > 0
            })
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Iterate over (frame, descriptor) pairs with a live owner.
    pub fn iter_owned(&self) -> impl Iterator<Item = (Pfn, &PageDesc)> + '_ {
        self.descs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.owner.is_some())
            .map(|(i, d)| (Pfn(i as u64), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        let key = PageKey {
            pid: 12345,
            vpn: Vpn(0xF_FFFF_FFFF),
        };
        assert_eq!(PageKey::unpack(key.pack()), key);
    }

    #[test]
    fn pack_distinct_for_distinct_pages() {
        let a = PageKey {
            pid: 1,
            vpn: Vpn(2),
        };
        let b = PageKey {
            pid: 2,
            vpn: Vpn(1),
        };
        assert_ne!(a.pack(), b.pack());
    }

    #[test]
    fn bump_accumulates_epoch_and_total() {
        let mut t = PageDescTable::new(4);
        t.bump_abit(Pfn(2), 0);
        t.bump_abit(Pfn(2), 0);
        t.bump_trace(Pfn(2), 0);
        let d = t.get(Pfn(2));
        assert_eq!(d.abit_epoch, 2);
        assert_eq!(d.trace_epoch, 1);
        assert_eq!(d.epoch_rank(), 3);
        assert_eq!(d.abit_total, 2);
    }

    #[test]
    fn rank_keeps_moving_past_the_old_u32_saturation_horizon() {
        // Regression: the epoch counters used to be u32 with
        // `saturating_add`, so two pages that both crossed ~4.3e9
        // observations pinned at the same rank forever — the hottest pages
        // in the system became indistinguishable. Pre-load the counters at
        // the old ceiling (bumping 4e9 times in a test is not viable) and
        // check further bumps still separate them.
        let mut t = PageDescTable::new(2);
        t.get_mut(Pfn(0)).abit_epoch = u32::MAX as u64;
        t.get_mut(Pfn(1)).abit_epoch = u32::MAX as u64;
        assert_eq!(t.get(Pfn(0)).epoch_rank(), t.get(Pfn(1)).epoch_rank());
        t.bump_abit(Pfn(1), 0);
        assert!(
            t.get(Pfn(1)).epoch_rank() > t.get(Pfn(0)).epoch_rank(),
            "a bump past the old ceiling must still change the ordering"
        );
        assert_eq!(t.get(Pfn(1)).epoch_rank(), u32::MAX as u64 + 1);
    }

    #[test]
    fn reset_epoch_keeps_totals() {
        let mut t = PageDescTable::new(2);
        t.bump_trace(Pfn(0), 0);
        t.reset_epoch();
        let d = t.get(Pfn(0));
        assert_eq!(d.trace_epoch, 0);
        assert_eq!(d.trace_total, 1);
    }

    #[test]
    fn migrate_moves_stats_and_clears_source() {
        let mut t = PageDescTable::new(4);
        let key = PageKey {
            pid: 7,
            vpn: Vpn(9),
        };
        t.set_owner(Pfn(1), key);
        t.bump_abit(Pfn(1), 3);
        t.migrate(Pfn(1), Pfn(3));
        assert_eq!(t.get(Pfn(3)).owner, Some(key));
        assert_eq!(t.get(Pfn(3)).abit_epoch, 1);
        assert_eq!(t.get(Pfn(1)).owner, None);
        assert_eq!(t.get(Pfn(1)).abit_epoch, 0);
    }

    #[test]
    fn iter_owned_skips_free_frames() {
        let mut t = PageDescTable::new(8);
        t.set_owner(
            Pfn(1),
            PageKey {
                pid: 1,
                vpn: Vpn(1),
            },
        );
        t.set_owner(
            Pfn(5),
            PageKey {
                pid: 1,
                vpn: Vpn(2),
            },
        );
        let frames: Vec<Pfn> = t.iter_owned().map(|(p, _)| p).collect();
        assert_eq!(frames, vec![Pfn(1), Pfn(5)]);
    }

    #[test]
    fn touched_frames_covers_exactly_the_observed_frames() {
        let mut t = PageDescTable::new(16);
        t.bump_abit(Pfn(3), 0);
        t.bump_abit(Pfn(3), 0); // second bump must not duplicate
        t.bump_trace(Pfn(7), 0);
        t.bump_trace(Pfn(1), 0);
        assert_eq!(t.touched_frames(), vec![Pfn(1), Pfn(3), Pfn(7)]);
        t.reset_epoch();
        assert!(t.touched_frames().is_empty());
        // Counters actually cleared, and fresh bumps repopulate the list.
        assert_eq!(t.get(Pfn(3)).abit_epoch, 0);
        t.bump_trace(Pfn(3), 1);
        assert_eq!(t.touched_frames(), vec![Pfn(3)]);
    }

    #[test]
    fn migrate_keeps_the_dirty_list_consistent() {
        let mut t = PageDescTable::new(8);
        let key = PageKey {
            pid: 1,
            vpn: Vpn(4),
        };
        t.set_owner(Pfn(2), key);
        t.bump_abit(Pfn(2), 0);
        t.migrate(Pfn(2), Pfn(6));
        // The stats moved: the destination is touched, the source is stale.
        assert_eq!(t.touched_frames(), vec![Pfn(6)]);
        t.reset_epoch();
        assert_eq!(t.get(Pfn(6)).abit_epoch, 0);
        assert_eq!(t.get(Pfn(6)).abit_total, 1, "totals survive the horizon");
        assert!(t.touched_frames().is_empty());
    }

    #[test]
    fn reset_epoch_via_dirty_list_matches_full_reset() {
        let mut t = PageDescTable::new(64);
        for pfn in [0u64, 5, 9, 31, 63] {
            t.bump_abit(Pfn(pfn), 0);
            t.bump_trace(Pfn(pfn), 0);
        }
        t.reset_epoch();
        for d in &t.descs {
            assert_eq!(d.abit_epoch, 0);
            assert_eq!(d.trace_epoch, 0);
        }
    }
}
