//! Address-space primitives: virtual/physical addresses, page and cache-line
//! geometry.
//!
//! The simulator models the conventional x86-64 layout the paper assumes:
//! 4 KiB base pages, 64 B cache lines, 48-bit virtual addresses translated by
//! a 4-level radix page table. All quantities are newtypes so that virtual
//! and physical values cannot be mixed up by accident.

/// log2 of the base page size (4 KiB).
pub const PAGE_SHIFT: u32 = 12;
/// Base page size in bytes.
pub const PAGE_SIZE: u64 = 1 << PAGE_SHIFT;
/// Mask selecting the offset-within-page bits.
pub const PAGE_OFFSET_MASK: u64 = PAGE_SIZE - 1;

/// log2 of the cache-line size (64 B).
pub const LINE_SHIFT: u32 = 6;
/// Cache-line size in bytes.
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;

/// Number of virtual-address bits implemented (x86-64 4-level paging).
pub const VA_BITS: u32 = 48;
/// Bits of VPN index consumed by each radix level (512-entry tables).
pub const RADIX_BITS: u32 = 9;
/// Number of radix levels in the simulated page table.
pub const RADIX_LEVELS: usize = 4;

/// A virtual byte address in some process's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VirtAddr(pub u64);

/// A physical byte address (identifies a location in some memory tier).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(pub u64);

/// A virtual page number: `VirtAddr >> PAGE_SHIFT`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Vpn(pub u64);

/// A physical frame number: `PhysAddr >> PAGE_SHIFT`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl VirtAddr {
    /// The page containing this address.
    #[inline]
    pub fn vpn(self) -> Vpn {
        Vpn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the page.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & PAGE_OFFSET_MASK
    }

    /// The cache-line-aligned address (used as the tag unit by caches).
    #[inline]
    pub fn line(self) -> u64 {
        self.0 >> LINE_SHIFT
    }

    /// True if the address is representable in the simulated 48-bit space.
    #[inline]
    pub fn is_canonical(self) -> bool {
        self.0 < (1u64 << VA_BITS)
    }
}

impl PhysAddr {
    /// The frame containing this address.
    #[inline]
    pub fn pfn(self) -> Pfn {
        Pfn(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the frame.
    #[inline]
    pub fn page_offset(self) -> u64 {
        self.0 & PAGE_OFFSET_MASK
    }

    /// The cache-line index of this address (global line number).
    #[inline]
    pub fn line(self) -> u64 {
        self.0 >> LINE_SHIFT
    }
}

impl Vpn {
    /// First byte address of the page.
    #[inline]
    pub fn base(self) -> VirtAddr {
        VirtAddr(self.0 << PAGE_SHIFT)
    }

    /// Radix-table index of this VPN at `level` (level 0 is the leaf).
    ///
    /// Matches x86-64: level 3 indexes the PML4, level 0 the PT.
    #[inline]
    pub fn radix_index(self, level: usize) -> usize {
        debug_assert!(level < RADIX_LEVELS);
        ((self.0 >> (RADIX_BITS as usize * level)) & ((1 << RADIX_BITS) - 1)) as usize
    }
}

impl Pfn {
    /// First byte address of the frame.
    #[inline]
    pub fn base(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }
}

/// Combine a frame with a page offset into a full physical address.
#[inline]
pub fn phys_addr(pfn: Pfn, offset: u64) -> PhysAddr {
    debug_assert!(offset < PAGE_SIZE);
    PhysAddr((pfn.0 << PAGE_SHIFT) | offset)
}

impl core::fmt::Debug for VirtAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "va:{:#x}", self.0)
    }
}
impl core::fmt::Debug for PhysAddr {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pa:{:#x}", self.0)
    }
}
impl core::fmt::Debug for Vpn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "vpn:{:#x}", self.0)
    }
}
impl core::fmt::Debug for Pfn {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_geometry_is_4k() {
        assert_eq!(PAGE_SIZE, 4096);
        assert_eq!(LINE_SIZE, 64);
        assert_eq!(PAGE_SIZE / LINE_SIZE, 64);
    }

    #[test]
    fn vpn_and_offset_roundtrip() {
        let va = VirtAddr(0x7fff_dead_beef);
        let reassembled = (va.vpn().0 << PAGE_SHIFT) | va.page_offset();
        assert_eq!(reassembled, va.0);
    }

    #[test]
    fn pfn_and_offset_roundtrip() {
        let pa = PhysAddr(0x1_2345_6789);
        assert_eq!(phys_addr(pa.pfn(), pa.page_offset()), pa);
    }

    #[test]
    fn radix_indices_cover_48_bits() {
        // A VPN with all index fields at their maximum decodes per level.
        let vpn = Vpn((1u64 << (VA_BITS - PAGE_SHIFT)) - 1);
        for level in 0..RADIX_LEVELS {
            assert_eq!(vpn.radix_index(level), 511, "level {level}");
        }
    }

    #[test]
    fn radix_index_extracts_correct_field() {
        // Set only the level-2 index to 5.
        let vpn = Vpn(5 << (RADIX_BITS * 2));
        assert_eq!(vpn.radix_index(0), 0);
        assert_eq!(vpn.radix_index(1), 0);
        assert_eq!(vpn.radix_index(2), 5);
        assert_eq!(vpn.radix_index(3), 0);
    }

    #[test]
    fn line_number_strides_every_64_bytes() {
        assert_eq!(VirtAddr(0).line(), VirtAddr(63).line());
        assert_ne!(VirtAddr(63).line(), VirtAddr(64).line());
    }

    #[test]
    fn canonical_check() {
        assert!(VirtAddr((1 << 48) - 1).is_canonical());
        assert!(!VirtAddr(1 << 48).is_canonical());
    }
}
