//! The in-core trace-sampling hardware (IBS on AMD, PEBS on Intel).
//!
//! This module is the *hardware* half of trace-based profiling: a per-core
//! engine that tags micro-ops and deposits sample records into a bounded
//! buffer, exactly like IBS's MSR-fed sample delivery or PEBS's designated
//! memory region (§II-B). The *driver* half — configuring rates, draining
//! buffers, charging interrupt costs, aggregating into page descriptors —
//! lives in the `tmprof-profilers` crate, mirroring the paper's kernel-module
//! / hardware split.

use crate::addr::{PhysAddr, VirtAddr};
use crate::cache::CacheLevel;
use crate::tier::Tier;
use crate::tlb::Pid;

/// What triggers sample selection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceMode {
    /// AMD IBS op sampling: tag every `period`-th retired micro-op,
    /// regardless of kind. Non-memory tagged ops still raise the interrupt
    /// (pure overhead) but carry no data address.
    IbsOp { period: u64 },
    /// Intel PEBS on a memory event: record every `period`-th op that
    /// *qualifies* (here: demand loads whose data source is at or beyond
    /// `min_source`). No interrupts are wasted on non-qualifying ops.
    PebsEvent { period: u64, min_source: CacheLevel },
}

impl TraceMode {
    /// The configured sampling period.
    pub fn period(&self) -> u64 {
        match *self {
            TraceMode::IbsOp { period } => period,
            TraceMode::PebsEvent { period, .. } => period,
        }
    }
}

/// One sample record, carrying the fields §III-B-1 lists: timestamp, CPU,
/// PID, instruction pointer, virtual and physical data address, access type,
/// and cache-miss information.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceSample {
    /// Core-local cycle count at retirement.
    pub timestamp: u64,
    /// Core that retired the op.
    pub cpu: u32,
    /// Process the op belongs to.
    pub pid: Pid,
    /// Synthetic instruction pointer (workload site id).
    pub ip: u64,
    /// Virtual data address.
    pub vaddr: VirtAddr,
    /// Physical data address.
    pub paddr: PhysAddr,
    /// Store (true) or load (false).
    pub is_store: bool,
    /// Which level served the data.
    pub source: CacheLevel,
    /// Memory tier that served it, when `source == Memory`.
    pub tier: Option<Tier>,
    /// Access latency in cycles (hit/miss latency field of IBS).
    pub latency: u32,
    /// Whether address translation hit in the TLB.
    pub tlb_hit: bool,
}

/// Hardware sample buffer capacity (IBS-style small per-core buffer).
pub const TRACE_BUF_CAP: usize = 4096;

/// Per-core sampling engine state.
pub struct TraceEngine {
    mode: TraceMode,
    enabled: bool,
    countdown: u64,
    buf: Vec<TraceSample>,
    /// Samples dropped because the buffer was full before a drain.
    dropped: u64,
    /// Tagged ops that carried no data address (IBS overhead-only tags).
    nonmem_tags: u64,
    /// Total samples ever produced (kept across drains).
    produced: u64,
    /// xorshift state for IBS counter randomization (see
    /// [`TraceEngine::reload_countdown`]).
    rng: u64,
}

/// Outcome of offering an op to the engine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TagOutcome {
    /// Op was not selected.
    Untagged,
    /// Op was selected and a record was (or would have been) produced.
    Tagged,
}

impl TraceEngine {
    /// New engine in the given mode, initially disabled.
    pub fn new(mode: TraceMode) -> Self {
        assert!(mode.period() > 0, "sampling period must be positive");
        Self {
            mode,
            enabled: false,
            countdown: mode.period(),
            buf: Vec::new(),
            dropped: 0,
            nonmem_tags: 0,
            produced: 0,
            rng: 0x1234_5678_9ABC_DEF1,
        }
    }

    /// Reload the tag countdown after a sample.
    ///
    /// AMD IBS randomizes the low bits of `IbsOpCurCnt` on each reload so
    /// that periodic code (tight loops whose op pattern divides the
    /// sampling period) cannot alias every tag onto the same instruction.
    /// We reproduce that: for periods of at least 16 ops the reload is
    /// jittered by up to `period/8`; tiny periods (unit tests, saturated
    /// sampling) stay exact.
    #[inline]
    fn reload_countdown(&mut self) {
        let period = self.mode.period();
        self.countdown = if period < 16 {
            period
        } else {
            // xorshift64: cheap, deterministic, good enough for jitter.
            let mut x = self.rng;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.rng = x;
            (period - x % (period / 8)).max(1)
        };
    }

    /// Current mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// Reconfigure the sampling mode (driver writes the control MSR).
    pub fn set_mode(&mut self, mode: TraceMode) {
        assert!(mode.period() > 0);
        self.mode = mode;
        self.countdown = mode.period();
    }

    /// Enable or disable sampling (TMP's gating flips this, §III-B-4).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
        if enabled {
            self.countdown = self.mode.period();
        }
    }

    /// Whether sampling is currently on.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Offer a *non-memory* op to the engine.
    pub fn offer_compute(&mut self) -> TagOutcome {
        if !self.enabled {
            return TagOutcome::Untagged;
        }
        match self.mode {
            TraceMode::IbsOp { .. } => {
                self.countdown -= 1;
                if self.countdown == 0 {
                    self.reload_countdown();
                    self.nonmem_tags += 1;
                    TagOutcome::Tagged
                } else {
                    TagOutcome::Untagged
                }
            }
            // PEBS only counts qualifying events; compute ops never qualify.
            TraceMode::PebsEvent { .. } => TagOutcome::Untagged,
        }
    }

    /// Offer a memory op (with its full microarchitectural outcome) to the
    /// engine; pushes a record if the op is selected.
    pub fn offer_mem(&mut self, sample: TraceSample) -> TagOutcome {
        if !self.enabled {
            return TagOutcome::Untagged;
        }
        let selected = match self.mode {
            TraceMode::IbsOp { .. } => {
                self.countdown -= 1;
                if self.countdown == 0 {
                    self.reload_countdown();
                    true
                } else {
                    false
                }
            }
            TraceMode::PebsEvent { period, min_source } => {
                let qualifies = !sample.is_store && sample.source >= min_source;
                if qualifies {
                    self.countdown -= 1;
                    if self.countdown == 0 {
                        self.countdown = period;
                        true
                    } else {
                        false
                    }
                } else {
                    false
                }
            }
        };
        if !selected {
            return TagOutcome::Untagged;
        }
        self.produced += 1;
        if self.buf.len() >= TRACE_BUF_CAP {
            self.dropped += 1;
        } else {
            self.buf.push(sample);
        }
        TagOutcome::Tagged
    }

    /// Drain the sample buffer (the driver's periodic poll). Also returns
    /// the number of overhead-only tags and drops since the last drain.
    pub fn drain(&mut self) -> (Vec<TraceSample>, DrainInfo) {
        let info = DrainInfo {
            nonmem_tags: self.nonmem_tags,
            dropped: self.dropped,
        };
        self.nonmem_tags = 0;
        self.dropped = 0;
        (std::mem::take(&mut self.buf), info)
    }

    /// [`TraceEngine::drain`] into a caller-owned buffer (appended), keeping
    /// both the engine's ring allocation and the caller's buffer alive
    /// across polls — the batch-aware drain path, one allocation for the
    /// whole run instead of one per core per poll.
    pub fn drain_into(&mut self, out: &mut Vec<TraceSample>) -> DrainInfo {
        let info = DrainInfo {
            nonmem_tags: self.nonmem_tags,
            dropped: self.dropped,
        };
        self.nonmem_tags = 0;
        self.dropped = 0;
        out.append(&mut self.buf);
        info
    }

    /// Samples waiting to be drained.
    pub fn pending(&self) -> usize {
        self.buf.len()
    }

    /// True when the buffer has filled (the "buffer full" interrupt line).
    pub fn buffer_full(&self) -> bool {
        self.buf.len() >= TRACE_BUF_CAP
    }

    /// Lifetime count of produced samples.
    pub fn produced(&self) -> u64 {
        self.produced
    }
}

/// Side information returned by [`TraceEngine::drain`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DrainInfo {
    /// Tagged non-memory ops (interrupt cost with no data).
    pub nonmem_tags: u64,
    /// Samples lost to buffer overflow.
    pub dropped: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem_sample(source: CacheLevel, is_store: bool) -> TraceSample {
        TraceSample {
            timestamp: 0,
            cpu: 0,
            pid: 1,
            ip: 0,
            vaddr: VirtAddr(0x1000),
            paddr: PhysAddr(0x2000),
            is_store,
            source,
            tier: (source == CacheLevel::Memory).then_some(Tier::Tier1),
            latency: 100,
            tlb_hit: true,
        }
    }

    #[test]
    fn disabled_engine_never_tags() {
        let mut e = TraceEngine::new(TraceMode::IbsOp { period: 1 });
        for _ in 0..100 {
            assert_eq!(
                e.offer_mem(mem_sample(CacheLevel::Memory, false)),
                TagOutcome::Untagged
            );
            assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        }
        assert_eq!(e.pending(), 0);
    }

    #[test]
    fn ibs_tags_every_nth_op_of_any_kind() {
        let mut e = TraceEngine::new(TraceMode::IbsOp { period: 3 });
        e.set_enabled(true);
        let mut tags = 0;
        for i in 0..12 {
            let out = if i % 2 == 0 {
                e.offer_compute()
            } else {
                e.offer_mem(mem_sample(CacheLevel::L1, false))
            };
            if out == TagOutcome::Tagged {
                tags += 1;
            }
        }
        // Tags fall on offers 3, 6, 9, 12 — alternating compute/mem.
        assert_eq!(tags, 4);
        // Half the tags landed on compute ops: overhead with no record.
        let (records, info) = e.drain();
        assert_eq!(records.len() as u64 + info.nonmem_tags, 4);
        assert!(info.nonmem_tags > 0);
    }

    #[test]
    fn pebs_only_counts_qualifying_loads() {
        let mut e = TraceEngine::new(TraceMode::PebsEvent {
            period: 2,
            min_source: CacheLevel::Memory,
        });
        e.set_enabled(true);
        // Stores and cache hits never qualify.
        for _ in 0..10 {
            assert_eq!(
                e.offer_mem(mem_sample(CacheLevel::Memory, true)),
                TagOutcome::Untagged
            );
            assert_eq!(
                e.offer_mem(mem_sample(CacheLevel::L1, false)),
                TagOutcome::Untagged
            );
            assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        }
        // Every 2nd qualifying load is sampled.
        let mut tags = 0;
        for _ in 0..10 {
            if e.offer_mem(mem_sample(CacheLevel::Memory, false)) == TagOutcome::Tagged {
                tags += 1;
            }
        }
        assert_eq!(tags, 5);
        let (records, info) = e.drain();
        assert_eq!(records.len(), 5);
        assert_eq!(info.nonmem_tags, 0, "PEBS wastes no interrupts");
    }

    #[test]
    fn buffer_overflow_drops_and_reports() {
        let mut e = TraceEngine::new(TraceMode::IbsOp { period: 1 });
        e.set_enabled(true);
        for _ in 0..TRACE_BUF_CAP + 10 {
            e.offer_mem(mem_sample(CacheLevel::Memory, false));
        }
        assert!(e.buffer_full());
        let (records, info) = e.drain();
        assert_eq!(records.len(), TRACE_BUF_CAP);
        assert_eq!(info.dropped, 10);
        assert_eq!(e.pending(), 0);
        assert_eq!(e.produced(), (TRACE_BUF_CAP + 10) as u64);
    }

    #[test]
    fn reenabling_resets_countdown() {
        let mut e = TraceEngine::new(TraceMode::IbsOp { period: 4 });
        e.set_enabled(true);
        e.offer_compute();
        e.offer_compute();
        e.offer_compute();
        e.set_enabled(false);
        e.set_enabled(true);
        // Needs a full period again.
        assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        assert_eq!(e.offer_compute(), TagOutcome::Tagged);
    }

    #[test]
    fn set_mode_changes_period() {
        let mut e = TraceEngine::new(TraceMode::IbsOp { period: 1000 });
        e.set_enabled(true);
        e.set_mode(TraceMode::IbsOp { period: 2 });
        assert_eq!(e.offer_compute(), TagOutcome::Untagged);
        assert_eq!(e.offer_compute(), TagOutcome::Tagged);
    }
}
