//! Page-Modification Logging (PML) hardware model.
//!
//! Intel PML automates D-bit collection: while active, "each write that sets
//! a D-bit also generates an entry in an in-memory log with the physical
//! address of the write (aligned to 4 KB). When the log is full, a
//! notification to the system software is generated" (§II-B). The paper
//! focuses on A-bit/trace profiling but lists PML as part of the monitoring
//! landscape; we model it so write-heavy policies (and the CLOCK-DWF-style
//! ablation) have a realistic dirty-page source.

use crate::addr::Pfn;

/// Architectural PML log size: 512 entries (one 4 KiB page of 8-byte GPAs).
pub const PML_LOG_ENTRIES: usize = 512;

/// Per-core PML state.
pub struct PmlEngine {
    enabled: bool,
    log: Vec<Pfn>,
    /// Number of full-log notifications raised (each costs a VM exit).
    notifications: u64,
    /// Entries lost because software had not drained a full log.
    lost: u64,
}

impl PmlEngine {
    /// New, disabled engine.
    pub fn new() -> Self {
        Self {
            enabled: false,
            log: Vec::new(),
            notifications: 0,
            lost: 0,
        }
    }

    /// Turn logging on/off.
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Whether logging is active.
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Hardware hook: a write just transitioned a PTE's D bit from 0 to 1.
    /// Returns true if this entry filled the log (notification raised).
    pub fn record_dirty(&mut self, pfn: Pfn) -> bool {
        if !self.enabled {
            return false;
        }
        if self.log.len() >= PML_LOG_ENTRIES {
            self.lost += 1;
            return false;
        }
        self.log.push(pfn);
        if self.log.len() == PML_LOG_ENTRIES {
            self.notifications += 1;
            true
        } else {
            false
        }
    }

    /// Software drain of the log.
    pub fn drain(&mut self) -> Vec<Pfn> {
        std::mem::take(&mut self.log)
    }

    /// Entries currently buffered.
    pub fn pending(&self) -> usize {
        self.log.len()
    }

    /// Full-log notifications raised so far.
    pub fn notifications(&self) -> u64 {
        self.notifications
    }

    /// Entries dropped on an un-drained full log.
    pub fn lost(&self) -> u64 {
        self.lost
    }
}

impl Default for PmlEngine {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_records_nothing() {
        let mut pml = PmlEngine::new();
        assert!(!pml.record_dirty(Pfn(1)));
        assert_eq!(pml.pending(), 0);
    }

    #[test]
    fn records_until_full_then_notifies() {
        let mut pml = PmlEngine::new();
        pml.set_enabled(true);
        for i in 0..PML_LOG_ENTRIES - 1 {
            assert!(!pml.record_dirty(Pfn(i as u64)));
        }
        assert!(
            pml.record_dirty(Pfn(999)),
            "512th entry raises notification"
        );
        assert_eq!(pml.notifications(), 1);
        // Further writes are lost until drained.
        assert!(!pml.record_dirty(Pfn(1000)));
        assert_eq!(pml.lost(), 1);
        let drained = pml.drain();
        assert_eq!(drained.len(), PML_LOG_ENTRIES);
        assert_eq!(pml.pending(), 0);
        assert!(!pml.record_dirty(Pfn(1)));
        assert_eq!(pml.pending(), 1);
    }
}
