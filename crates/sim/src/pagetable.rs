//! A 4-level radix page table, one per simulated process.
//!
//! This is the structure both hardware and software in the paper contend
//! over: the hardware page-table walker fills TLB entries from it (setting
//! A/D bits as it goes), while the A-bit profiler periodically performs an
//! `mm_walk`-style traversal that read-and-clears the A bits.
//!
//! The in-memory representation is a real radix tree (512-way, 4 levels,
//! lazily allocated) rather than a hash map, because the *cost* of the
//! software walk — proportional to the number of resident leaf tables and
//! PTEs — is one of the quantities the paper measures (Table I: "the more
//! PIDs are covered, the more overhead there is in traversing PTEs").
//!
//! Interior nodes additionally carry *summary* A/D words (one bit per
//! child, the PMD/PUD/PGD analogue of the leaf `a_words`): a summary bit
//! is a conservative superset flag saying the child's whole subtree *may*
//! contain a set A/D bit. The hierarchical scan
//! ([`PageTable::hier_scan_accessed_bounded`], Telescope-style) uses them
//! to prune entire cold subtrees in O(1) — charging the subtree's exact
//! walk footprint from per-node aggregates so cost accounting, budget
//! consumption, and resume cursors stay bit-identical to the flat
//! word-wise scan, which remains the authoritative inner loop.

use crate::addr::{Vpn, RADIX_BITS, RADIX_LEVELS};
#[allow(unused_imports)]
use crate::pte::bits as _pte_bits;
use crate::pte::Pte;
use tmprof_obs::metrics::{self, Metric};

const FANOUT: usize = 1 << RADIX_BITS;

/// Pages covered by one level-1 (2 MiB) huge mapping.
pub const HUGE_SPAN: u64 = FANOUT as u64;

/// `u64` words per leaf table's packed bitmaps (64 pages per word).
pub const SCAN_WORDS: usize = FANOUT / 64;

/// Set or clear `bit` in `word` according to `on`, branch-free.
#[inline]
fn set_bit(word: &mut u64, bit: u64, on: bool) {
    *word = (*word & !bit) | if on { bit } else { 0 };
}

/// A leaf table: 512 PTEs covering a 2 MiB-aligned virtual range.
///
/// Alongside the PTE array it keeps three packed bitmaps (one bit per
/// slot, 64 slots per `u64`), the structure behind the word-wise A-bit
/// scan:
///
/// * `present_words` — exact: bit set iff the slot holds a present PTE;
/// * `a_words` / `d_words` — conservative *supersets* of the slots whose
///   PTE has the A/D bit set. A bitmap bit may be stale-set (e.g. after
///   `entry_mut` handed out a `&mut Pte` that the caller never touched)
///   but is never stale-clear, so a word-wise scan over
///   `a_words & present_words` can skip clear words without ever missing
///   an accessed page; the per-candidate `test_and_clear_accessed` stays
///   authoritative.
struct LeafTable {
    ptes: Box<[Pte; FANOUT]>,
    present: u16,
    present_words: [u64; SCAN_WORDS],
    a_words: [u64; SCAN_WORDS],
    d_words: [u64; SCAN_WORDS],
}

impl LeafTable {
    fn new() -> Self {
        Self {
            ptes: Box::new([Pte::NONE; FANOUT]),
            present: 0,
            present_words: [0; SCAN_WORDS],
            a_words: [0; SCAN_WORDS],
            d_words: [0; SCAN_WORDS],
        }
    }

    /// Resynchronize slot `pi`'s bitmap bits exactly from its PTE.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — pi < FANOUT: callers derive it from radix_index(0) or word/bit decomposition
    fn sync_slot(&mut self, pi: usize) {
        let w = pi >> 6;
        let bit = 1u64 << (pi & 63);
        let pte = self.ptes[pi];
        set_bit(&mut self.present_words[w], bit, pte.present());
        set_bit(&mut self.a_words[w], bit, pte.present() && pte.accessed());
        set_bit(&mut self.d_words[w], bit, pte.present() && pte.dirty());
    }

    /// Conservatively mark slot `pi` as a possible A/D candidate: callers
    /// of `entry_mut` (the hardware walker above all) may set either bit
    /// through the returned reference, so the bitmaps must assume they do.
    #[inline]
    fn mark_slot_ad(&mut self, pi: usize) {
        let w = pi >> 6;
        let bit = 1u64 << (pi & 63);
        self.a_words[w] |= bit;
        self.d_words[w] |= bit;
    }

    /// Candidate word `w` for the requested bit kind.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — w < SCAN_WORDS by the scan-word loop contract of every caller
    fn a_or_d_word(&self, which: ScanBit, w: usize) -> u64 {
        match which {
            ScanBit::Accessed => self.a_words[w],
            ScanBit::Dirty => self.d_words[w],
        }
    }
}

/// Which packed bitmap a word-wise scan draws candidates from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ScanBit {
    Accessed,
    Dirty,
}

/// An interior node at level 1..=3.
///
/// Besides the child slots it carries the hierarchical-scan metadata:
///
/// * `live_words` — exact bitmap of occupied child slots, the interior
///   twin of the leaf `present_words` (64 slots per word);
/// * `a_sum` / `d_sum` — conservative summary supersets: bit set when the
///   child's subtree *may* hold a present PTE with the A/D bit set. Like
///   the leaf bitmaps they can be stale-set but never stale-clear, so a
///   clear bit proves the whole subtree is cold;
/// * `agg_*` — exact walk-unit aggregates for the subtree (a huge entry
///   counts as one PTE, exactly as the walk visits it; `agg_interiors`
///   includes the node itself; `agg_leaves` includes empty leaf tables
///   left behind by unmap, which the flat walk also touches). They let
///   the hierarchical scan charge a skipped subtree's exact
///   [`WalkFootprint`] without descending into it.
struct Interior {
    children: Vec<Option<Node>>,
    live_words: [u64; SCAN_WORDS],
    a_sum: [u64; SCAN_WORDS],
    d_sum: [u64; SCAN_WORDS],
    agg_ptes: u64,
    agg_leaves: u64,
    agg_interiors: u64,
}

enum Node {
    Interior(Box<Interior>),
    Leaf(Box<LeafTable>),
    /// A level-1 leaf: one PTE (PS bit set) covering 512 contiguous pages
    /// backed by 512 contiguous frames. A/D bits live at this granularity —
    /// the THP coarsening the paper's BadgerTrap discussion alludes to.
    Huge(Pte),
}

impl Interior {
    fn new() -> Self {
        let mut children = Vec::with_capacity(FANOUT);
        children.resize_with(FANOUT, || None);
        Self {
            children,
            live_words: [0; SCAN_WORDS],
            a_sum: [0; SCAN_WORDS],
            d_sum: [0; SCAN_WORDS],
            agg_ptes: 0,
            agg_leaves: 0,
            agg_interiors: 1,
        }
    }

    #[inline]
    fn set_live(&mut self, idx: usize) {
        self.live_words[idx >> 6] |= 1u64 << (idx & 63);
    }

    #[inline]
    fn clear_live(&mut self, idx: usize) {
        self.live_words[idx >> 6] &= !(1u64 << (idx & 63));
    }

    /// Conservatively mark child `idx` as a possible A/D candidate: the
    /// interior twin of [`LeafTable::mark_slot_ad`], used on the
    /// `entry_mut` descent path because the caller may set either bit
    /// through the returned reference.
    #[inline]
    fn mark_child_ad(&mut self, idx: usize) {
        let bit = 1u64 << (idx & 63);
        self.a_sum[idx >> 6] |= bit;
        self.d_sum[idx >> 6] |= bit;
    }

    /// Set (never clear) the summary bits for child `idx` from an
    /// installed PTE's flags.
    #[inline]
    fn mark_child_bits(&mut self, idx: usize, a: bool, d: bool) {
        let bit = 1u64 << (idx & 63);
        if a {
            self.a_sum[idx >> 6] |= bit;
        }
        if d {
            self.d_sum[idx >> 6] |= bit;
        }
    }

    /// Fold a mapping delta from a completed descent into the aggregates.
    #[inline]
    fn apply(&mut self, d: MapDelta) {
        self.agg_ptes += d.ptes;
        self.agg_leaves += d.leaves;
        self.agg_interiors += d.interiors;
    }
}

/// Nodes/PTEs newly created by a mapping descent, propagated back up so
/// every node on the path can update its subtree aggregates.
#[derive(Clone, Copy, Default)]
struct MapDelta {
    /// Newly present walk units (a huge entry counts as one).
    ptes: u64,
    leaves: u64,
    interiors: u64,
}

impl MapDelta {
    #[inline]
    fn absorb(&mut self, o: MapDelta) {
        self.ptes += o.ptes;
        self.leaves += o.leaves;
        self.interiors += o.interiors;
    }
}

/// Recompute the A/D summary for child `idx` exactly from the child's own
/// (possibly conservative) words. Called after a traversal processed the
/// child: the visit closure may have set *or* cleared bits, and a
/// stale-clear summary would make the hierarchical scan skip a hot
/// subtree, so every traversal re-tightens summaries on the way out.
#[inline]
fn resync_summary(
    a_sum: &mut [u64; SCAN_WORDS],
    d_sum: &mut [u64; SCAN_WORDS],
    idx: usize,
    child: &Node,
) {
    let (a, d) = child_summary_flags(child);
    let bit = 1u64 << (idx & 63);
    set_bit(&mut a_sum[idx >> 6], bit, a);
    set_bit(&mut d_sum[idx >> 6], bit, d);
}

/// Whether `child`'s subtree may hold a present PTE with the A/D bit set,
/// judged from the child's own summary/bitmap state (not a full descent).
#[inline]
// tmprof-lint: allow(panic-reachability) — w ranges over 0..SCAN_WORDS, the fixed length of both word arrays
fn child_summary_flags(child: &Node) -> (bool, bool) {
    match child {
        Node::Interior(n) => (
            n.a_sum.iter().any(|&w| w != 0),
            n.d_sum.iter().any(|&w| w != 0),
        ),
        Node::Leaf(l) => {
            let (mut a, mut d) = (0u64, 0u64);
            for w in 0..SCAN_WORDS {
                a |= l.a_words[w] & l.present_words[w];
                d |= l.d_words[w] & l.present_words[w];
            }
            (a != 0, d != 0)
        }
        Node::Huge(p) => (p.present() && p.accessed(), p.present() && p.dirty()),
    }
}

/// Exact walk-unit aggregates for a child subtree, as the flat walk would
/// charge them: (PTE visits, leaf tables, interior nodes).
#[inline]
fn child_aggregates(child: &Node) -> (u64, u64, u64) {
    match child {
        Node::Interior(n) => (n.agg_ptes, n.agg_leaves, n.agg_interiors),
        Node::Leaf(l) => (u64::from(l.present), 1, 0),
        Node::Huge(_) => (1, 0, 0),
    }
}

/// Per-scan pruning counters, exported as tmprof-obs metrics.
#[derive(Default)]
struct HierScanStats {
    skipped: u64,
    descended: u64,
}

/// Statistics describing a software traversal of the table, used by the
/// profiler cost model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalkFootprint {
    /// Leaf PTEs visited (present entries only).
    pub ptes_visited: u64,
    /// Leaf tables touched.
    pub leaf_tables: u64,
    /// Interior nodes touched (including the root).
    pub interior_nodes: u64,
}

/// Why a mapping could not be installed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MapError {
    /// 4 KiB mappings already occupy part of the requested 2 MiB range.
    /// Recoverable: the caller falls back to base-page mapping, exactly
    /// what the kernel's THP allocator does on a failed collapse.
    HugeConflict {
        /// The (aligned) base of the rejected huge range.
        base: Vpn,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::HugeConflict { base } => {
                write!(
                    f,
                    "4 KiB mappings already occupy the huge range at {base:?}"
                )
            }
        }
    }
}

impl std::error::Error for MapError {}

/// A per-process 4-level radix page table.
pub struct PageTable {
    root: Interior,
    mapped_pages: u64,
}

impl PageTable {
    /// Create an empty address space.
    pub fn new() -> Self {
        Self {
            root: Interior::new(),
            mapped_pages: 0,
        }
    }

    /// Number of present leaf mappings.
    pub fn mapped_pages(&self) -> u64 {
        self.mapped_pages
    }

    /// Install a 2 MiB huge mapping: `base` must be 512-page aligned and
    /// `pte` must have the PS bit set and point at a 512-aligned run of
    /// frames. Fails with [`MapError::HugeConflict`] when 4 KiB mappings
    /// already exist in the range; the caller is expected to fall back to
    /// base-page mapping.
    pub fn map_huge(&mut self, base: Vpn, pte: Pte) -> Result<(), MapError> {
        assert!(base.0 % HUGE_SPAN == 0, "huge base {base:?} not aligned");
        assert!(pte.present() && pte.huge(), "huge PTE must be present+PS");
        let (delta, res) = Self::map_huge_rec(&mut self.root, RADIX_LEVELS - 1, base, pte);
        self.mapped_pages += delta.ptes * HUGE_SPAN;
        res
    }

    // tmprof-lint: allow(panic-reachability) — idx = radix_index(level) masks to FANOUT - 1
    fn map_huge_rec(
        node: &mut Interior,
        level: usize,
        base: Vpn,
        pte: Pte,
    ) -> (MapDelta, Result<(), MapError>) {
        let idx = base.radix_index(level);
        let mut delta = MapDelta::default();
        let res = if level > 1 {
            if node.children[idx].is_none() {
                node.children[idx] = Some(Node::Interior(Box::new(Interior::new())));
                node.set_live(idx);
                delta.interiors += 1;
            }
            let next = match node.children[idx].as_mut() {
                Some(Node::Interior(next)) => next,
                // tmprof-lint: allow(panic-reachability) — the slot was filled with an Interior just above; a Leaf/Huge at interior depth would mean the radix tree itself is corrupt
                _ => unreachable!("leaf at interior level"),
            };
            let (child_delta, res) = Self::map_huge_rec(next, level - 1, base, pte);
            delta.absorb(child_delta);
            res
        } else {
            match node.children[idx].as_mut() {
                None => {
                    node.children[idx] = Some(Node::Huge(pte));
                    node.set_live(idx);
                    delta.ptes += 1;
                    Ok(())
                }
                Some(Node::Huge(old)) => {
                    *old = pte;
                    Ok(())
                }
                Some(_) => Err(MapError::HugeConflict { base }),
            }
        };
        if res.is_ok() {
            node.mark_child_bits(idx, pte.accessed(), pte.dirty());
        }
        node.apply(delta);
        (delta, res)
    }

    /// Remove a huge mapping, returning its PTE.
    pub fn unmap_huge(&mut self, base: Vpn) -> Option<Pte> {
        assert!(base.0 % HUGE_SPAN == 0);
        let old = Self::unmap_huge_rec(&mut self.root, RADIX_LEVELS - 1, base)?;
        self.mapped_pages -= HUGE_SPAN;
        Some(old)
    }

    fn unmap_huge_rec(node: &mut Interior, level: usize, base: Vpn) -> Option<Pte> {
        let idx = base.radix_index(level);
        let old = if level > 1 {
            match node.children[idx].as_mut()? {
                Node::Interior(next) => Self::unmap_huge_rec(next, level - 1, base)?,
                _ => return None,
            }
        } else {
            if !matches!(node.children[idx], Some(Node::Huge(_))) {
                return None;
            }
            let Some(Node::Huge(old)) = node.children[idx].take() else {
                return None;
            };
            node.clear_live(idx);
            old
        };
        // The summary bits are left as-is: a stale-set bit over the now
        // emptier subtree is conservative and re-tightens on the next scan.
        node.agg_ptes -= 1;
        Some(old)
    }

    /// Install (or replace) the translation for `vpn`.
    pub fn map(&mut self, vpn: Vpn, pte: Pte) {
        debug_assert!(pte.present(), "mapping a non-present PTE");
        debug_assert!(!pte.huge(), "use map_huge for PS mappings");
        let delta = Self::map_rec(&mut self.root, RADIX_LEVELS - 1, vpn, pte);
        self.mapped_pages += delta.ptes;
    }

    // tmprof-lint: allow(panic-reachability) — idx = radix_index(level) masks to FANOUT - 1
    fn map_rec(node: &mut Interior, level: usize, vpn: Vpn, pte: Pte) -> MapDelta {
        let idx = vpn.radix_index(level);
        let mut delta = MapDelta::default();
        if level > 1 {
            if node.children[idx].is_none() {
                node.children[idx] = Some(Node::Interior(Box::new(Interior::new())));
                node.set_live(idx);
                delta.interiors += 1;
            }
            let next = match node.children[idx].as_mut() {
                Some(Node::Interior(next)) => next,
                // tmprof-lint: allow(panic-reachability) — the slot was filled with an Interior just above; a Leaf/Huge at interior depth would mean the radix tree itself is corrupt
                _ => unreachable!("leaf at interior level"),
            };
            delta.absorb(Self::map_rec(next, level - 1, vpn, pte));
        } else {
            if node.children[idx].is_none() {
                node.children[idx] = Some(Node::Leaf(Box::new(LeafTable::new())));
                node.set_live(idx);
                delta.leaves += 1;
            }
            match node.children[idx].as_mut() {
                Some(Node::Leaf(leaf)) => {
                    let pi = vpn.radix_index(0);
                    if !leaf.ptes[pi].present() {
                        leaf.present += 1;
                        delta.ptes += 1;
                    }
                    leaf.ptes[pi] = pte;
                    leaf.sync_slot(pi);
                }
                // tmprof-lint: allow(panic-reachability) — mapping a 4 KiB page under a live huge mapping is a machine-level invariant breach: the walker would have hit the huge PTE instead of faulting, so no caller can reach this with a huge entry installed
                Some(Node::Huge(_)) => panic!("range already covered by a huge mapping"),
                // tmprof-lint: allow(panic-reachability) — level-1 slots only ever hold Leaf or Huge nodes; an Interior here would mean the radix tree itself is corrupt
                _ => unreachable!("interior at leaf level"),
            }
        }
        node.mark_child_bits(idx, pte.accessed(), pte.dirty());
        node.apply(delta);
        delta
    }

    /// Remove the translation for `vpn`, returning the prior entry.
    pub fn unmap(&mut self, vpn: Vpn) -> Option<Pte> {
        let old = Self::unmap_rec(&mut self.root, RADIX_LEVELS - 1, vpn)?;
        self.mapped_pages -= 1;
        Some(old)
    }

    fn unmap_rec(node: &mut Interior, level: usize, vpn: Vpn) -> Option<Pte> {
        let idx = vpn.radix_index(level);
        let old = if level > 1 {
            match node.children[idx].as_mut()? {
                Node::Interior(next) => Self::unmap_rec(next, level - 1, vpn)?,
                _ => return None,
            }
        } else {
            match node.children[idx].as_mut()? {
                Node::Leaf(leaf) => {
                    let pi = vpn.radix_index(0);
                    if !leaf.ptes[pi].present() {
                        return None;
                    }
                    let old = leaf.ptes[pi];
                    leaf.ptes[pi] = Pte::NONE;
                    leaf.present -= 1;
                    leaf.sync_slot(pi);
                    old
                }
                _ => return None,
            }
        };
        // Empty leaf tables stay in the tree (and in `agg_leaves`), exactly
        // as the flat walk keeps touching them.
        node.agg_ptes -= 1;
        Some(old)
    }

    /// Read the entry for `vpn` (present or not-present). For a huge
    /// mapping this returns the covering level-1 PTE (check [`Pte::huge`];
    /// its `pfn` is the run base — use [`PageTable::resolve`] for the
    /// per-page frame).
    // tmprof-lint: allow(panic-reachability) — radix_index masks each level's index to FANOUT - 1
    pub fn get(&self, vpn: Vpn) -> Pte {
        let mut node = &self.root;
        for level in (1..RADIX_LEVELS).rev() {
            match &node.children[vpn.radix_index(level)] {
                Some(Node::Interior(next)) => node = next,
                Some(Node::Leaf(leaf)) => return leaf.ptes[vpn.radix_index(0)],
                Some(Node::Huge(pte)) => return *pte,
                None => return Pte::NONE,
            }
        }
        Pte::NONE
    }

    /// Resolve `vpn` to its backing frame, handling huge-page offsets.
    pub fn resolve(&self, vpn: Vpn) -> Option<crate::addr::Pfn> {
        let pte = self.get(vpn);
        if !pte.present() {
            return None;
        }
        Some(if pte.huge() {
            crate::addr::Pfn(pte.pfn().0 + (vpn.0 & (HUGE_SPAN - 1)))
        } else {
            pte.pfn()
        })
    }

    /// Mutable access to the entry for `vpn`, if a mapping exists for it.
    /// For huge mappings this is the covering level-1 PTE — A/D/poison
    /// bits are shared by all 512 pages, exactly the THP granularity.
    ///
    /// This is the primitive the hardware walker uses to set A/D bits and
    /// the software drivers use to poison/clear entries.
    // tmprof-lint: allow(panic-reachability) — radix_index masks each level's index to FANOUT - 1
    pub fn entry_mut(&mut self, vpn: Vpn) -> Option<&mut Pte> {
        let mut node = &mut self.root;
        for level in (2..RADIX_LEVELS).rev() {
            let idx = vpn.radix_index(level);
            // The caller may set A/D through the returned reference; mark
            // the whole descent path so the summaries stay supersets (a
            // stale-set bit on a failed lookup is conservative and fine).
            node.mark_child_ad(idx);
            node = match node.children[idx].as_mut()? {
                Node::Interior(next) => next,
                _ => return None,
            };
        }
        let idx = vpn.radix_index(1);
        node.mark_child_ad(idx);
        match node.children[idx].as_mut()? {
            Node::Leaf(leaf) => {
                let pi = vpn.radix_index(0);
                // Same marking at leaf granularity.
                leaf.mark_slot_ad(pi);
                Some(&mut leaf.ptes[pi])
            }
            Node::Huge(pte) => Some(pte),
            Node::Interior(_) => None,
        }
    }

    /// `mm_walk`: visit every *present* PTE in ascending VPN order, with
    /// mutable access (the A-bit driver's `gather_a_history` callback runs
    /// here). Returns the traversal footprint for cost accounting.
    pub fn walk_present(&mut self, mut visit: impl FnMut(Vpn, &mut Pte)) -> WalkFootprint {
        let mut fp = WalkFootprint {
            interior_nodes: 1,
            ..Default::default()
        };
        Self::walk_node(&mut self.root, 0, &mut fp, &mut visit);
        fp
    }

    fn walk_node(
        node: &mut Interior,
        prefix: u64,
        fp: &mut WalkFootprint,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) {
        let Interior {
            children,
            a_sum,
            d_sum,
            ..
        } = node;
        for (idx, child) in children.iter_mut().enumerate() {
            let Some(child) = child else { continue };
            let child_prefix = (prefix << RADIX_BITS) | idx as u64;
            match child {
                Node::Interior(next) => {
                    fp.interior_nodes += 1;
                    Self::walk_node(next, child_prefix, fp, visit);
                }
                Node::Leaf(leaf) => {
                    fp.leaf_tables += 1;
                    for pi in 0..FANOUT {
                        if leaf.ptes[pi].present() {
                            fp.ptes_visited += 1;
                            let vpn = Vpn((child_prefix << RADIX_BITS) | pi as u64);
                            visit(vpn, &mut leaf.ptes[pi]);
                            // The closure may have set or cleared A/D.
                            leaf.sync_slot(pi);
                        }
                    }
                }
                Node::Huge(pte) => {
                    // One PTE for the whole 2 MiB range: visited once.
                    fp.ptes_visited += 1;
                    let vpn = Vpn(child_prefix << RADIX_BITS);
                    visit(vpn, pte);
                }
            }
            resync_summary(a_sum, d_sum, idx, child);
        }
    }

    /// Budgeted, resumable `mm_walk`: visit up to `limit` present PTEs in
    /// ascending VPN order, starting at `start` (inclusive). Returns the
    /// traversal footprint and the VPN to resume from next time (`None`
    /// when the walk reached the end of the address space).
    ///
    /// This is the primitive behind TMP's "restrictive mode" (§III-B-4,
    /// optimization 2): bounding the PTEs visited per scan keeps A-bit
    /// overhead stable regardless of footprint, at the cost of needing
    /// several intervals to cover a huge address space.
    pub fn walk_present_bounded(
        &mut self,
        start: Vpn,
        limit: u64,
        mut visit: impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        let mut fp = WalkFootprint {
            interior_nodes: 1,
            ..Default::default()
        };
        let mut resume = None;
        if limit > 0 {
            Self::walk_node_bounded(
                &mut self.root,
                RADIX_LEVELS - 1,
                0,
                start,
                limit,
                &mut fp,
                &mut resume,
                &mut visit,
            );
        } else {
            resume = Some(start);
        }
        (fp, resume)
    }

    /// Recursive helper for the bounded walk. Returns true when the budget
    /// is exhausted (`resume` then holds the next VPN to visit).
    #[allow(clippy::too_many_arguments)]
    // tmprof-lint: allow(panic-reachability) — pi ranges over 0..FANOUT; child slots come from enumerate over the fixed arrays
    fn walk_node_bounded(
        node: &mut Interior,
        level: usize,
        prefix: u64,
        start: Vpn,
        limit: u64,
        fp: &mut WalkFootprint,
        resume: &mut Option<Vpn>,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> bool {
        let Interior {
            children,
            a_sum,
            d_sum,
            ..
        } = node;
        for (idx, child) in children.iter_mut().enumerate() {
            // Prune children strictly before the start prefix at this level.
            let child_prefix = (prefix << RADIX_BITS) | idx as u64;
            let span_bits = RADIX_BITS as usize * level;
            let child_first_vpn = child_prefix << span_bits;
            let child_last_vpn = child_first_vpn + (1u64 << span_bits) - 1;
            if child_last_vpn < start.0 {
                continue;
            }
            let Some(child) = child else { continue };
            let truncated = match child {
                Node::Interior(next) => {
                    fp.interior_nodes += 1;
                    Self::walk_node_bounded(
                        next,
                        level - 1,
                        child_prefix,
                        start,
                        limit,
                        fp,
                        resume,
                        visit,
                    )
                }
                Node::Leaf(leaf) => {
                    fp.leaf_tables += 1;
                    let mut trunc = false;
                    for pi in 0..FANOUT {
                        let vpn = Vpn((child_prefix << RADIX_BITS) | pi as u64);
                        if vpn.0 < start.0 || !leaf.ptes[pi].present() {
                            continue;
                        }
                        if fp.ptes_visited >= limit {
                            *resume = Some(vpn);
                            trunc = true;
                            break;
                        }
                        fp.ptes_visited += 1;
                        visit(vpn, &mut leaf.ptes[pi]);
                        leaf.sync_slot(pi);
                    }
                    trunc
                }
                Node::Huge(pte) => {
                    let vpn = Vpn(child_prefix << RADIX_BITS);
                    // Skip a huge entry wholly below the cursor. Without
                    // this check (mirroring the leaf arm's `vpn < start`
                    // skip) a resumed sweep whose cursor lands inside a
                    // huge span re-visits the entry, double-counting its
                    // footprint and re-clearing its A bit.
                    if vpn.0 < start.0 {
                        false
                    } else if fp.ptes_visited >= limit {
                        *resume = Some(vpn);
                        true
                    } else {
                        fp.ptes_visited += 1;
                        visit(vpn, pte);
                        false
                    }
                }
            };
            // Re-tighten this child's summary even on truncation: the
            // closure may have set or cleared bits before the budget ran
            // out, and a stale-clear summary must never survive.
            resync_summary(a_sum, d_sum, idx, child);
            if truncated {
                return true;
            }
        }
        false
    }

    /// Word-wise budgeted A-bit scan: the packed twin of
    /// [`PageTable::walk_present_bounded`] behind `ABitScanner::scan_process`.
    ///
    /// Traversal order, footprint accounting (`ptes_visited` counts every
    /// present PTE in the covered span, not just candidates), budget
    /// consumption, and resume-cursor semantics are all identical to the
    /// scalar bounded walk. The difference is purely how candidates are
    /// found: instead of branching on every PTE, each leaf loads
    /// `a_words & present_words` one `u64` at a time — 64 pages per load —
    /// and iterates set bits via `trailing_zeros`. Because `a_words` is a
    /// conservative superset, `visit` only runs for PTEs that *may* have
    /// the A bit set and must confirm with `test_and_clear_accessed`; the
    /// bitmap is re-tightened from the PTE after each visit.
    pub fn scan_accessed_bounded(
        &mut self,
        start: Vpn,
        limit: u64,
        mut visit: impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        self.scan_bit_bounded(ScanBit::Accessed, start, limit, &mut visit)
    }

    /// Word-wise budgeted D-bit scan (writeback/PML drains); same contract
    /// as [`PageTable::scan_accessed_bounded`] with `d_words` candidates.
    pub fn scan_dirty_bounded(
        &mut self,
        start: Vpn,
        limit: u64,
        mut visit: impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        self.scan_bit_bounded(ScanBit::Dirty, start, limit, &mut visit)
    }

    fn scan_bit_bounded(
        &mut self,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        let mut fp = WalkFootprint {
            interior_nodes: 1,
            ..Default::default()
        };
        let mut resume = None;
        if limit > 0 {
            Self::scan_node_bounded(
                &mut self.root,
                RADIX_LEVELS - 1,
                0,
                which,
                start,
                limit,
                &mut fp,
                &mut resume,
                visit,
            );
        } else {
            resume = Some(start);
        }
        (fp, resume)
    }

    /// Recursive helper for the packed scan; structure mirrors
    /// [`PageTable::walk_node_bounded`] exactly so the two stay
    /// footprint- and cursor-identical (locked down by the scan_props
    /// suite).
    #[allow(clippy::too_many_arguments)]
    fn scan_node_bounded(
        node: &mut Interior,
        level: usize,
        prefix: u64,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        fp: &mut WalkFootprint,
        resume: &mut Option<Vpn>,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> bool {
        let Interior {
            children,
            a_sum,
            d_sum,
            ..
        } = node;
        for (idx, child) in children.iter_mut().enumerate() {
            let child_prefix = (prefix << RADIX_BITS) | idx as u64;
            let span_bits = RADIX_BITS as usize * level;
            let child_first_vpn = child_prefix << span_bits;
            let child_last_vpn = child_first_vpn + (1u64 << span_bits) - 1;
            if child_last_vpn < start.0 {
                continue;
            }
            let Some(child) = child else { continue };
            let truncated = match child {
                Node::Interior(next) => {
                    fp.interior_nodes += 1;
                    Self::scan_node_bounded(
                        next,
                        level - 1,
                        child_prefix,
                        which,
                        start,
                        limit,
                        fp,
                        resume,
                        visit,
                    )
                }
                Node::Leaf(leaf) => {
                    fp.leaf_tables += 1;
                    Self::scan_leaf_words(
                        leaf,
                        child_prefix,
                        which,
                        start,
                        limit,
                        fp,
                        resume,
                        visit,
                    )
                }
                Node::Huge(pte) => {
                    Self::scan_huge_entry(pte, child_prefix, which, start, limit, fp, resume, visit)
                }
            };
            resync_summary(a_sum, d_sum, idx, child);
            if truncated {
                return true;
            }
        }
        false
    }

    /// The authoritative word-wise leaf scan, shared verbatim by the flat
    /// and hierarchical modes. Returns true when the budget ran out inside
    /// this leaf (`resume` then holds the cursor).
    #[allow(clippy::too_many_arguments)]
    // tmprof-lint: allow(panic-reachability) — w < SCAN_WORDS and pi = (w << 6) | bit < FANOUT by construction
    fn scan_leaf_words(
        leaf: &mut LeafTable,
        child_prefix: u64,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        fp: &mut WalkFootprint,
        resume: &mut Option<Vpn>,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> bool {
        let base = child_prefix << RADIX_BITS;
        for w in 0..SCAN_WORDS {
            let word_base = base | ((w as u64) << 6);
            if word_base + 63 < start.0 {
                continue;
            }
            // Present slots at or after the cursor in this word.
            let mut live = leaf.present_words[w];
            if word_base < start.0 {
                live &= !0u64 << (start.0 - word_base);
            }
            if live == 0 {
                continue;
            }
            // The scalar walk consumes one budget unit per present PTE;
            // replicate that with a popcount, and truncate the word at the
            // slot where the budget runs out so the resume cursor lands
            // exactly where the scalar walk's would.
            let avail = u64::from(live.count_ones());
            let budget_left = limit - fp.ptes_visited;
            let span = if avail > budget_left {
                let mut rest = live;
                for _ in 0..budget_left {
                    rest &= rest - 1;
                }
                let resume_bit = u64::from(rest.trailing_zeros());
                *resume = Some(Vpn(word_base | resume_bit));
                live & ((1u64 << resume_bit) - 1)
            } else {
                live
            };
            let mut cand = leaf.a_or_d_word(which, w) & span;
            while cand != 0 {
                let bit = cand.trailing_zeros() as usize;
                cand &= cand - 1;
                let pi = (w << 6) | bit;
                visit(Vpn(word_base | bit as u64), &mut leaf.ptes[pi]);
                leaf.sync_slot(pi);
            }
            fp.ptes_visited += u64::from(span.count_ones());
            if resume.is_some() {
                return true;
            }
        }
        false
    }

    /// Scan-mode visit of one huge entry; shared by the flat and
    /// hierarchical modes.
    #[allow(clippy::too_many_arguments)]
    fn scan_huge_entry(
        pte: &mut Pte,
        child_prefix: u64,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        fp: &mut WalkFootprint,
        resume: &mut Option<Vpn>,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> bool {
        let vpn = Vpn(child_prefix << RADIX_BITS);
        if vpn.0 < start.0 {
            return false;
        }
        if fp.ptes_visited >= limit {
            *resume = Some(vpn);
            return true;
        }
        fp.ptes_visited += 1;
        // Huge entries keep their A/D at the PTE itself (one bit per
        // 2 MiB); gate the visit on the live bit.
        let candidate = match which {
            ScanBit::Accessed => pte.accessed(),
            ScanBit::Dirty => pte.dirty(),
        };
        if candidate {
            visit(vpn, pte);
        }
        false
    }

    /// Hierarchical budgeted A-bit scan (Telescope-style, behind
    /// `TMPROF_HIER_SCAN`): prune whole cold subtrees using the interior
    /// summary words before touching leaf words.
    ///
    /// Contract-identical to [`PageTable::scan_accessed_bounded`]: same
    /// observations, same cleared bits, same [`WalkFootprint`] (a skipped
    /// subtree is charged its exact aggregate footprint), same budget
    /// consumption, and the same resume cursor — so the simulated cost
    /// model and every committed CSV are unchanged whether or not the
    /// hierarchical mode is on. A subtree is skipped only when its summary
    /// bit is clear (proving it holds no candidates), it lies wholly at or
    /// after the cursor, and its full visit count fits the remaining
    /// budget (otherwise the flat cursor would stop inside it).
    pub fn hier_scan_accessed_bounded(
        &mut self,
        start: Vpn,
        limit: u64,
        mut visit: impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        self.hier_scan_bit_bounded(ScanBit::Accessed, start, limit, &mut visit)
    }

    /// Hierarchical budgeted D-bit scan; same contract as
    /// [`PageTable::hier_scan_accessed_bounded`] with `d_sum` summaries.
    pub fn hier_scan_dirty_bounded(
        &mut self,
        start: Vpn,
        limit: u64,
        mut visit: impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        self.hier_scan_bit_bounded(ScanBit::Dirty, start, limit, &mut visit)
    }

    fn hier_scan_bit_bounded(
        &mut self,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> (WalkFootprint, Option<Vpn>) {
        let mut fp = WalkFootprint {
            interior_nodes: 1,
            ..Default::default()
        };
        let mut resume = None;
        let mut stats = HierScanStats::default();
        if limit > 0 {
            Self::hier_scan_node(
                &mut self.root,
                RADIX_LEVELS - 1,
                0,
                which,
                start,
                limit,
                &mut fp,
                &mut resume,
                &mut stats,
                visit,
            );
        } else {
            resume = Some(start);
        }
        metrics::add(Metric::SimHierSubtreesSkipped, stats.skipped);
        metrics::add(Metric::SimHierSubtreesDescended, stats.descended);
        (fp, resume)
    }

    /// Recursive helper for the hierarchical scan. Occupied children are
    /// found via `live_words` (64 slots per load); a child whose summary
    /// bit is clear, whose span lies wholly at/after the cursor, and whose
    /// aggregate visit count fits the remaining budget is charged its
    /// exact footprint and skipped in O(1). Everything else descends into
    /// the same leaf/huge arms as the flat scan, then re-tightens the
    /// summary bit on the way out.
    #[allow(clippy::too_many_arguments)]
    // tmprof-lint: allow(panic-reachability) — lw < SCAN_WORDS and idx = (lw << 6) | trailing_zeros(occ) < FANOUT
    fn hier_scan_node(
        node: &mut Interior,
        level: usize,
        prefix: u64,
        which: ScanBit,
        start: Vpn,
        limit: u64,
        fp: &mut WalkFootprint,
        resume: &mut Option<Vpn>,
        stats: &mut HierScanStats,
        visit: &mut impl FnMut(Vpn, &mut Pte),
    ) -> bool {
        let Interior {
            children,
            live_words,
            a_sum,
            d_sum,
            ..
        } = node;
        let span_bits = RADIX_BITS as usize * level;
        for lw in 0..SCAN_WORDS {
            let mut occ = live_words[lw];
            while occ != 0 {
                let idx = (lw << 6) | occ.trailing_zeros() as usize;
                occ &= occ - 1;
                let child_prefix = (prefix << RADIX_BITS) | idx as u64;
                let child_first_vpn = child_prefix << span_bits;
                let child_last_vpn = child_first_vpn + (1u64 << span_bits) - 1;
                if child_last_vpn < start.0 {
                    continue;
                }
                let Some(child) = children[idx].as_mut() else {
                    continue;
                };
                let summary_word = match which {
                    ScanBit::Accessed => a_sum[lw],
                    ScanBit::Dirty => d_sum[lw],
                };
                let cold = summary_word & (1u64 << (idx & 63)) == 0;
                let (agg_ptes, agg_leaves, agg_interiors) = child_aggregates(child);
                if cold && child_first_vpn >= start.0 && agg_ptes <= limit - fp.ptes_visited {
                    // Provably no candidates, wholly at/after the cursor,
                    // and the flat cursor could not stop inside it: charge
                    // the exact footprint and prune the whole subtree.
                    fp.ptes_visited += agg_ptes;
                    fp.leaf_tables += agg_leaves;
                    fp.interior_nodes += agg_interiors;
                    stats.skipped += 1;
                    continue;
                }
                stats.descended += 1;
                let truncated = match child {
                    Node::Interior(next) => {
                        fp.interior_nodes += 1;
                        Self::hier_scan_node(
                            next,
                            level - 1,
                            child_prefix,
                            which,
                            start,
                            limit,
                            fp,
                            resume,
                            stats,
                            visit,
                        )
                    }
                    Node::Leaf(leaf) => {
                        fp.leaf_tables += 1;
                        Self::scan_leaf_words(
                            leaf,
                            child_prefix,
                            which,
                            start,
                            limit,
                            fp,
                            resume,
                            visit,
                        )
                    }
                    Node::Huge(pte) => Self::scan_huge_entry(
                        pte,
                        child_prefix,
                        which,
                        start,
                        limit,
                        fp,
                        resume,
                        visit,
                    ),
                };
                resync_summary(a_sum, d_sum, idx, child);
                if truncated {
                    return true;
                }
            }
        }
        false
    }

    /// Collect the VPNs of all present mappings (test/diagnostic helper).
    pub fn mapped_vpns(&mut self) -> Vec<Vpn> {
        let mut out = Vec::with_capacity(self.mapped_pages as usize);
        self.walk_present(|vpn, _| out.push(vpn));
        out
    }
}

impl Default for PageTable {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Pfn;

    #[test]
    fn empty_table_returns_none() {
        let pt = PageTable::new();
        assert!(!pt.get(Vpn(0)).present());
        assert!(!pt.get(Vpn(0xFFFF_FFFF)).present());
        assert_eq!(pt.mapped_pages(), 0);
    }

    #[test]
    fn map_then_get() {
        let mut pt = PageTable::new();
        pt.map(Vpn(0x1234), Pte::new(Pfn(0x99), true));
        let pte = pt.get(Vpn(0x1234));
        assert!(pte.present());
        assert_eq!(pte.pfn(), Pfn(0x99));
        assert_eq!(pt.mapped_pages(), 1);
    }

    #[test]
    fn remap_does_not_double_count() {
        let mut pt = PageTable::new();
        pt.map(Vpn(7), Pte::new(Pfn(1), true));
        pt.map(Vpn(7), Pte::new(Pfn(2), true));
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.get(Vpn(7)).pfn(), Pfn(2));
    }

    #[test]
    fn unmap_removes_translation() {
        let mut pt = PageTable::new();
        pt.map(Vpn(5), Pte::new(Pfn(50), false));
        let old = pt.unmap(Vpn(5)).unwrap();
        assert_eq!(old.pfn(), Pfn(50));
        assert!(!pt.get(Vpn(5)).present());
        assert_eq!(pt.mapped_pages(), 0);
        assert!(pt.unmap(Vpn(5)).is_none());
    }

    #[test]
    fn entries_in_distant_regions_coexist() {
        let mut pt = PageTable::new();
        // Spread across different PML4 entries.
        let vpns = [Vpn(0), Vpn(1 << 27), Vpn(5 << 27 | 123), Vpn((1 << 36) - 1)];
        for (i, &vpn) in vpns.iter().enumerate() {
            pt.map(vpn, Pte::new(Pfn(i as u64 + 1), true));
        }
        for (i, &vpn) in vpns.iter().enumerate() {
            assert_eq!(pt.get(vpn).pfn(), Pfn(i as u64 + 1), "{vpn:?}");
        }
    }

    #[test]
    fn entry_mut_mutates_in_place() {
        let mut pt = PageTable::new();
        pt.map(Vpn(10), Pte::new(Pfn(3), true));
        pt.entry_mut(Vpn(10)).unwrap().set(crate::pte::bits::A);
        assert!(pt.get(Vpn(10)).accessed());
    }

    #[test]
    fn walk_visits_in_vpn_order_and_counts() {
        let mut pt = PageTable::new();
        let mut expect: Vec<Vpn> = [900u64, 3, 512 * 7 + 1, 512, 77]
            .iter()
            .map(|&v| Vpn(v))
            .collect();
        for &vpn in &expect {
            pt.map(vpn, Pte::new(Pfn(vpn.0), true));
        }
        expect.sort();
        let mut seen = Vec::new();
        let fp = pt.walk_present(|vpn, _| seen.push(vpn));
        assert_eq!(seen, expect);
        assert_eq!(fp.ptes_visited, 5);
        assert!(fp.leaf_tables >= 2);
    }

    #[test]
    fn walk_can_clear_a_bits() {
        let mut pt = PageTable::new();
        for v in 0..100 {
            let mut pte = Pte::new(Pfn(v), true);
            if v % 2 == 0 {
                pte.set(crate::pte::bits::A);
            }
            pt.map(Vpn(v), pte);
        }
        let mut accessed = 0;
        pt.walk_present(|_, pte| {
            if pte.test_and_clear_accessed() {
                accessed += 1;
            }
        });
        assert_eq!(accessed, 50);
        let mut still = 0;
        pt.walk_present(|_, pte| {
            if pte.accessed() {
                still += 1;
            }
        });
        assert_eq!(still, 0);
    }

    #[test]
    fn bounded_walk_respects_budget_and_resumes() {
        let mut pt = PageTable::new();
        for v in 0..100u64 {
            pt.map(Vpn(v * 3), Pte::new(Pfn(v), true));
        }
        let mut seen = Vec::new();
        let (fp, resume) = pt.walk_present_bounded(Vpn(0), 40, |vpn, _| seen.push(vpn));
        assert_eq!(fp.ptes_visited, 40);
        assert_eq!(seen.len(), 40);
        assert_eq!(seen[39], Vpn(39 * 3));
        let resume = resume.expect("more pages remain");
        assert_eq!(resume, Vpn(40 * 3));
        // Resume picks up exactly where the budget ran out.
        let mut rest = Vec::new();
        let (fp2, resume2) = pt.walk_present_bounded(resume, 1000, |vpn, _| rest.push(vpn));
        assert_eq!(fp2.ptes_visited, 60);
        assert_eq!(rest[0], Vpn(40 * 3));
        assert_eq!(resume2, None, "walk completed");
    }

    #[test]
    fn bounded_walk_spanning_leaf_tables() {
        let mut pt = PageTable::new();
        // Pages in two distant leaf tables.
        for v in [0u64, 1, 2, 512 * 9, 512 * 9 + 1, 1 << 30] {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        let mut seen = Vec::new();
        let (_, resume) = pt.walk_present_bounded(Vpn(1), 3, |vpn, _| seen.push(vpn));
        assert_eq!(seen, vec![Vpn(1), Vpn(2), Vpn(512 * 9)]);
        assert_eq!(resume, Some(Vpn(512 * 9 + 1)));
        let mut rest = Vec::new();
        let (_, resume2) = pt.walk_present_bounded(resume.unwrap(), 10, |vpn, _| rest.push(vpn));
        assert_eq!(rest, vec![Vpn(512 * 9 + 1), Vpn(1 << 30)]);
        assert_eq!(resume2, None);
    }

    #[test]
    fn bounded_walk_zero_budget_visits_nothing() {
        let mut pt = PageTable::new();
        pt.map(Vpn(1), Pte::new(Pfn(1), true));
        let (fp, resume) = pt.walk_present_bounded(Vpn(0), 0, |_, _| panic!("visited"));
        assert_eq!(fp.ptes_visited, 0);
        assert_eq!(resume, Some(Vpn(0)));
    }

    #[test]
    fn huge_mapping_roundtrip() {
        let mut pt = PageTable::new();
        let mut pte = Pte::new(Pfn(8192), true);
        pte.set(crate::pte::bits::PS);
        pt.map_huge(Vpn(1024), pte).unwrap();
        assert_eq!(pt.mapped_pages(), HUGE_SPAN);
        // Every covered page resolves to its offset frame.
        assert_eq!(pt.resolve(Vpn(1024)), Some(Pfn(8192)));
        assert_eq!(pt.resolve(Vpn(1024 + 300)), Some(Pfn(8192 + 300)));
        assert_eq!(pt.resolve(Vpn(1023)), None);
        assert_eq!(pt.resolve(Vpn(1024 + 512)), None);
        // Unmap returns the PTE and clears the range.
        let old = pt.unmap_huge(Vpn(1024)).unwrap();
        assert!(old.huge());
        assert_eq!(pt.mapped_pages(), 0);
        assert_eq!(pt.resolve(Vpn(1024)), None);
    }

    #[test]
    fn huge_entry_mut_is_shared_across_the_span() {
        let mut pt = PageTable::new();
        let mut pte = Pte::new(Pfn(0), true);
        pte.set(crate::pte::bits::PS);
        pt.map_huge(Vpn(0), pte).unwrap();
        pt.entry_mut(Vpn(77)).unwrap().set(crate::pte::bits::A);
        assert!(pt.get(Vpn(400)).accessed(), "A bit is span-wide");
    }

    #[test]
    fn walk_visits_huge_entry_once() {
        let mut pt = PageTable::new();
        let mut pte = Pte::new(Pfn(0), true);
        pte.set(crate::pte::bits::PS);
        pt.map_huge(Vpn(512), pte).unwrap();
        pt.map(Vpn(5), Pte::new(Pfn(5), true));
        let mut seen = Vec::new();
        let fp = pt.walk_present(|vpn, p| seen.push((vpn, p.huge())));
        assert_eq!(fp.ptes_visited, 2);
        assert_eq!(seen, vec![(Vpn(5), false), (Vpn(512), true)]);
    }

    #[test]
    fn bounded_walk_counts_huge_entry_as_one_pte() {
        let mut pt = PageTable::new();
        for r in 0..4u64 {
            let mut pte = Pte::new(Pfn(r * 512), true);
            pte.set(crate::pte::bits::PS);
            pt.map_huge(Vpn(r * 512), pte).unwrap();
        }
        let mut seen = 0;
        let (fp, resume) = pt.walk_present_bounded(Vpn(0), 2, |_, _| seen += 1);
        assert_eq!(fp.ptes_visited, 2);
        assert_eq!(seen, 2);
        assert_eq!(resume, Some(Vpn(1024)));
    }

    #[test]
    #[should_panic(expected = "not aligned")]
    fn unaligned_huge_base_panics() {
        let mut pt = PageTable::new();
        let mut pte = Pte::new(Pfn(0), true);
        pte.set(crate::pte::bits::PS);
        let _ = pt.map_huge(Vpn(3), pte);
    }

    #[test]
    fn huge_over_base_pages_is_a_typed_conflict() {
        let mut pt = PageTable::new();
        pt.map(Vpn(512 + 7), Pte::new(Pfn(1), true));
        let mut pte = Pte::new(Pfn(0), true);
        pte.set(crate::pte::bits::PS);
        assert_eq!(
            pt.map_huge(Vpn(512), pte),
            Err(MapError::HugeConflict { base: Vpn(512) })
        );
        // The conflict is recoverable: the table is untouched and the 4 KiB
        // mapping still resolves.
        assert_eq!(pt.mapped_pages(), 1);
        assert_eq!(pt.resolve(Vpn(512 + 7)), Some(Pfn(1)));
        // A disjoint range still accepts the huge mapping afterwards.
        pt.map_huge(Vpn(1024), pte).unwrap();
        assert_eq!(pt.mapped_pages(), 1 + HUGE_SPAN);
    }

    /// A tree exercising every node shape: dense base pages, sparse base
    /// pages, a huge mapping, and an empty leaf table left by unmap.
    fn mixed_shape_table() -> PageTable {
        let mut pt = PageTable::new();
        for v in 0..700u64 {
            pt.map(Vpn(v * 2), Pte::new(Pfn(v), true));
        }
        let mut huge = Pte::new(Pfn(1 << 14), true);
        huge.set(crate::pte::bits::PS);
        pt.map_huge(Vpn(4096), huge).unwrap();
        pt.map(Vpn(1 << 30), Pte::new(Pfn(9), true));
        pt.unmap(Vpn(1 << 30)); // empty leaf table stays in the tree
        pt.map(Vpn((1 << 30) + 700), Pte::new(Pfn(10), true));
        pt
    }

    #[test]
    fn bounded_walk_footprint_matches_unbounded_when_budget_exceeds() {
        // Regression (ROADMAP item 5 satellite): with start=0 and a budget
        // larger than the mapped set, the bounded walk must report the
        // exact same WalkFootprint as walk_present — visited PTEs, leaf
        // tables, and interior nodes alike.
        let mut pt = mixed_shape_table();
        let mut a = Vec::new();
        let unbounded = pt.walk_present(|vpn, _| a.push(vpn));
        let mut b = Vec::new();
        let (bounded, resume) = pt.walk_present_bounded(Vpn(0), u64::MAX, |vpn, _| b.push(vpn));
        assert_eq!(a, b, "visit order diverged");
        assert_eq!(unbounded, bounded, "footprint accounting drifted");
        assert_eq!(resume, None);
    }

    #[test]
    fn bounded_walk_skips_huge_entry_below_cursor() {
        // A cursor landing inside a huge span (possible after the region
        // is remapped between budgeted sweeps) must not re-visit the huge
        // entry whose base lies below it.
        let mut pt = PageTable::new();
        let mut huge = Pte::new(Pfn(0), true);
        huge.set(crate::pte::bits::PS | crate::pte::bits::A);
        pt.map_huge(Vpn(0), huge).unwrap();
        pt.map(Vpn(600), Pte::new(Pfn(1), true));
        let mut seen = Vec::new();
        let (fp, resume) = pt.walk_present_bounded(Vpn(5), 100, |vpn, _| seen.push(vpn));
        assert_eq!(seen, vec![Vpn(600)], "huge entry below cursor re-visited");
        assert_eq!(fp.ptes_visited, 1);
        assert_eq!(resume, None);
        assert!(pt.get(Vpn(0)).accessed(), "A bit must survive the skip");
    }

    #[test]
    fn packed_scan_matches_scalar_walk() {
        // Same table contents, same budget, same cursor: the word-wise scan
        // must observe the same accessed pages, clear the same bits, report
        // the same footprint, and leave the same resume cursor.
        let build = || {
            let mut pt = mixed_shape_table();
            for v in [0u64, 63 * 2, 64 * 2, 511 * 2, 512 * 2, 699 * 2] {
                pt.entry_mut(Vpn(v)).unwrap().set(crate::pte::bits::A);
            }
            pt.entry_mut(Vpn(4096 + 17))
                .unwrap()
                .set(crate::pte::bits::A);
            pt
        };
        for budget in [3u64, 64, 701, u64::MAX] {
            let (mut scalar_pt, mut packed_pt) = (build(), build());
            let mut cursor_s = Vpn(0);
            let mut cursor_p = Vpn(0);
            loop {
                let mut hits_s = Vec::new();
                let (fp_s, res_s) = scalar_pt.walk_present_bounded(cursor_s, budget, |vpn, pte| {
                    if pte.test_and_clear_accessed() {
                        hits_s.push(vpn);
                    }
                });
                let mut hits_p = Vec::new();
                let (fp_p, res_p) =
                    packed_pt.scan_accessed_bounded(cursor_p, budget, |vpn, pte| {
                        if pte.test_and_clear_accessed() {
                            hits_p.push(vpn);
                        }
                    });
                assert_eq!(hits_s, hits_p, "budget {budget}: observations diverged");
                assert_eq!(fp_s, fp_p, "budget {budget}: footprints diverged");
                assert_eq!(res_s, res_p, "budget {budget}: cursors diverged");
                match res_s {
                    Some(v) => {
                        cursor_s = v;
                        cursor_p = v;
                    }
                    None => break,
                }
            }
            // Both tables end fully cleared.
            let mut left = 0;
            scalar_pt.walk_present(|_, pte| left += pte.accessed() as u32);
            packed_pt.walk_present(|_, pte| left += pte.accessed() as u32);
            assert_eq!(left, 0, "budget {budget}: stale A bits remain");
        }
    }

    #[test]
    fn hier_scan_matches_packed_scan() {
        // Three-way cycle: the hierarchical scan must stay in lockstep with
        // the flat packed scan (itself proven against the scalar walk
        // above) — observations, footprints, and cursors — across budgets
        // that truncate at every level.
        let build = || {
            let mut pt = mixed_shape_table();
            for v in [0u64, 63 * 2, 64 * 2, 511 * 2, 512 * 2, 699 * 2] {
                pt.entry_mut(Vpn(v)).unwrap().set(crate::pte::bits::A);
            }
            pt.entry_mut(Vpn(4096 + 17))
                .unwrap()
                .set(crate::pte::bits::A);
            pt
        };
        for budget in [1u64, 3, 64, 701, u64::MAX] {
            let (mut flat_pt, mut hier_pt) = (build(), build());
            let mut cursor = Vpn(0);
            loop {
                let mut hits_f = Vec::new();
                let (fp_f, res_f) = flat_pt.scan_accessed_bounded(cursor, budget, |vpn, pte| {
                    if pte.test_and_clear_accessed() {
                        hits_f.push(vpn);
                    }
                });
                let mut hits_h = Vec::new();
                let (fp_h, res_h) =
                    hier_pt.hier_scan_accessed_bounded(cursor, budget, |vpn, pte| {
                        if pte.test_and_clear_accessed() {
                            hits_h.push(vpn);
                        }
                    });
                assert_eq!(hits_f, hits_h, "budget {budget}: observations diverged");
                assert_eq!(fp_f, fp_h, "budget {budget}: footprints diverged");
                assert_eq!(res_f, res_h, "budget {budget}: cursors diverged");
                match res_f {
                    Some(v) => cursor = v,
                    None => break,
                }
            }
            let mut left = 0;
            hier_pt.walk_present(|_, pte| left += pte.accessed() as u32);
            assert_eq!(left, 0, "budget {budget}: stale A bits remain");
        }
    }

    #[test]
    fn hier_scan_prunes_cold_subtrees_but_charges_exact_footprint() {
        // 4096 mapped pages in 8 leaf tables, one hot page: the
        // hierarchical scan must find the one candidate, skip the 7 cold
        // leaves without loading their words, and still report the flat
        // scan's exact footprint (the cost model is unchanged).
        let mut pt = PageTable::new();
        for v in 0..4096u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        pt.entry_mut(Vpn(2049)).unwrap().set(crate::pte::bits::A);
        // A full clearing pass first: entry_mut conservatively marked the
        // whole descent path, so summaries only tighten after one scan.
        let mut warm = PageTable::new();
        for v in 0..4096u64 {
            warm.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        let (flat_fp, _) = warm.scan_accessed_bounded(Vpn(0), u64::MAX, |_, _| {});
        let before_skipped = metrics::get(Metric::SimHierSubtreesSkipped);
        let mut hits = Vec::new();
        let (fp, resume) = pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            if pte.test_and_clear_accessed() {
                hits.push(vpn);
            }
        });
        assert_eq!(hits, vec![Vpn(2049)]);
        assert_eq!(fp.ptes_visited, 4096);
        assert_eq!(fp.leaf_tables, 8);
        assert_eq!(fp, flat_fp);
        assert_eq!(resume, None);
        // Second scan: everything is cold and summaries are tight, so the
        // top-level subtree is pruned outright.
        let (fp2, _) = pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |_, _| {
            panic!("no candidates remain");
        });
        assert_eq!(fp2, fp, "pruned footprint drifted");
        assert!(
            metrics::get(Metric::SimHierSubtreesSkipped) > before_skipped,
            "cold subtrees were not pruned"
        );
    }

    #[test]
    fn hier_scan_descends_stale_set_summaries() {
        // Regression: a stale-SET summary bit (entry_mut marked the path
        // but the caller never set A, then the page went cold) must make
        // the hierarchical scan descend — and charge the same footprint as
        // the flat scan, not a blind aggregate.
        let mut pt = PageTable::new();
        for v in 0..1024u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        // Touch without setting A: summaries along the path go stale-set
        // (and so does the leaf word — both scans see a false candidate).
        let _ = pt.entry_mut(Vpn(700)).unwrap();
        let mut flat = PageTable::new();
        for v in 0..1024u64 {
            flat.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        let _ = flat.entry_mut(Vpn(700)).unwrap();
        let mut cand_f = Vec::new();
        let (flat_fp, flat_res) = flat.scan_accessed_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            assert!(!pte.test_and_clear_accessed());
            cand_f.push(vpn);
        });
        let mut cand_h = Vec::new();
        let (fp, res) = pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            assert!(!pte.test_and_clear_accessed());
            cand_h.push(vpn);
        });
        assert_eq!(cand_f, vec![Vpn(700)], "stale-set candidate not probed");
        assert_eq!(cand_h, cand_f, "candidate probes diverged");
        assert_eq!(fp, flat_fp);
        assert_eq!(res, flat_res);
    }

    #[test]
    fn walk_closures_resync_summaries_for_the_hier_scan() {
        // Regression for the stale-CLEAR hazard: after a full scan leaves
        // every summary clear, a walk closure sets an A bit directly on the
        // PTE. The walk must re-tighten the summaries on its way out, or
        // the next hierarchical scan would prune the now-hot subtree.
        let mut pt = PageTable::new();
        for v in 0..1024u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |_, pte| {
            pte.test_and_clear_accessed();
        });
        pt.walk_present(|vpn, pte| {
            if vpn == Vpn(777) {
                pte.set(crate::pte::bits::A);
            }
        });
        let mut hits = Vec::new();
        pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            if pte.test_and_clear_accessed() {
                hits.push(vpn);
            }
        });
        assert_eq!(hits, vec![Vpn(777)], "hier scan missed a walk-set A bit");
    }

    #[test]
    fn hier_scan_matches_flat_after_map_unmap_huge_churn() {
        // Aggregates must survive huge conflicts, unmaps, and remaps: the
        // unbounded hierarchical footprint equals walk_present's.
        let build = || {
            let mut pt = mixed_shape_table();
            let mut huge = Pte::new(Pfn(1 << 15), true);
            huge.set(crate::pte::bits::PS);
            // Conflicts with the base pages at 0..1400: rejected, no change.
            assert!(pt.map_huge(Vpn(512), huge).is_err());
            pt.map_huge(Vpn(8192), huge).unwrap();
            pt.unmap_huge(Vpn(8192)).unwrap();
            pt.map_huge(Vpn(8192), huge).unwrap();
            for v in 200..260u64 {
                pt.unmap(Vpn(v * 2));
            }
            pt
        };
        let mut flat = build();
        let mut hier = build();
        let flat_fp = flat.walk_present(|_, _| {});
        let (hier_fp, res) = hier.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |_, _| {});
        assert_eq!(hier_fp, flat_fp, "aggregates drifted from the real tree");
        assert_eq!(res, None);
        assert_eq!(flat.mapped_pages(), hier.mapped_pages());
    }

    #[test]
    fn hier_scan_budget_lands_inside_cold_subtree() {
        // When the budget runs out inside a cold subtree the flat cursor
        // stops there, so the hierarchical scan must descend (the skip
        // test fails) and leave the identical mid-subtree cursor.
        let mut pt = PageTable::new();
        for v in 0..2048u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        pt.hier_scan_accessed_bounded(Vpn(0), u64::MAX, |_, _| {}); // tighten
        let mut flat = PageTable::new();
        for v in 0..2048u64 {
            flat.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        flat.scan_accessed_bounded(Vpn(0), u64::MAX, |_, _| {});
        for budget in [1u64, 100, 511, 512, 513, 1000] {
            let (fp_f, res_f) = flat.scan_accessed_bounded(Vpn(0), budget, |_, _| {});
            let (fp_h, res_h) = pt.hier_scan_accessed_bounded(Vpn(0), budget, |_, _| {});
            assert_eq!(fp_f, fp_h, "budget {budget}");
            assert_eq!(res_f, res_h, "budget {budget}");
        }
    }

    #[test]
    fn packed_scan_skips_clear_words_but_counts_them() {
        // 4096 mapped pages, only one accessed: the packed scan still
        // charges the full footprint (the cost model is unchanged) while
        // visiting just the one candidate.
        let mut pt = PageTable::new();
        for v in 0..4096u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        pt.entry_mut(Vpn(2049)).unwrap().set(crate::pte::bits::A);
        let mut hits = Vec::new();
        let (fp, resume) = pt.scan_accessed_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            if pte.test_and_clear_accessed() {
                hits.push(vpn);
            }
        });
        assert_eq!(hits, vec![Vpn(2049)]);
        assert_eq!(fp.ptes_visited, 4096);
        assert_eq!(fp.leaf_tables, 8);
        assert_eq!(resume, None);
    }

    #[test]
    fn scan_dirty_bounded_finds_dirty_pages() {
        let mut pt = PageTable::new();
        for v in 0..128u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        pt.entry_mut(Vpn(7)).unwrap().set(crate::pte::bits::D);
        pt.entry_mut(Vpn(64)).unwrap().set(crate::pte::bits::D);
        let mut dirty = Vec::new();
        let (fp, _) = pt.scan_dirty_bounded(Vpn(0), u64::MAX, |vpn, pte| {
            if pte.test_and_clear_dirty() {
                dirty.push(vpn);
            }
        });
        assert_eq!(dirty, vec![Vpn(7), Vpn(64)]);
        assert_eq!(fp.ptes_visited, 128);
        // Bits cleared: a second scan sees nothing.
        let (_, _) = pt.scan_dirty_bounded(Vpn(0), u64::MAX, |_, _| panic!("dirty bit left set"));
    }

    #[test]
    fn hier_scan_dirty_matches_flat() {
        let build = || {
            let mut pt = mixed_shape_table();
            pt.entry_mut(Vpn(7 * 2)).unwrap().set(crate::pte::bits::D);
            pt.entry_mut(Vpn(650 * 2)).unwrap().set(crate::pte::bits::D);
            pt
        };
        let (mut flat, mut hier) = (build(), build());
        for budget in [5u64, u64::MAX] {
            let mut d_f = Vec::new();
            let (fp_f, res_f) = flat.scan_dirty_bounded(Vpn(0), budget, |vpn, pte| {
                if pte.test_and_clear_dirty() {
                    d_f.push(vpn);
                }
            });
            let mut d_h = Vec::new();
            let (fp_h, res_h) = hier.hier_scan_dirty_bounded(Vpn(0), budget, |vpn, pte| {
                if pte.test_and_clear_dirty() {
                    d_h.push(vpn);
                }
            });
            assert_eq!(d_f, d_h, "budget {budget}");
            assert_eq!(fp_f, fp_h, "budget {budget}");
            assert_eq!(res_f, res_h, "budget {budget}");
        }
    }

    #[test]
    fn packed_scan_resumes_mid_word() {
        // Budget runs out inside a word: the cursor must land on the next
        // present slot, exactly like the scalar walk.
        let mut pt = PageTable::new();
        for v in 60..70u64 {
            let mut pte = Pte::new(Pfn(v), true);
            pte.set(crate::pte::bits::A);
            pt.map(Vpn(v), pte);
        }
        let mut hits = Vec::new();
        let (fp, resume) = pt.scan_accessed_bounded(Vpn(0), 6, |vpn, pte| {
            if pte.test_and_clear_accessed() {
                hits.push(vpn);
            }
        });
        assert_eq!(fp.ptes_visited, 6);
        assert_eq!(hits, (60..66).map(Vpn).collect::<Vec<_>>());
        assert_eq!(resume, Some(Vpn(66)));
        let mut rest = Vec::new();
        let (_, resume2) = pt.scan_accessed_bounded(Vpn(66), 100, |vpn, pte| {
            if pte.test_and_clear_accessed() {
                rest.push(vpn);
            }
        });
        assert_eq!(rest, (66..70).map(Vpn).collect::<Vec<_>>());
        assert_eq!(resume2, None);
    }

    #[test]
    fn walk_footprint_scales_with_density() {
        // Dense region: 4096 contiguous pages -> 8 leaf tables.
        let mut pt = PageTable::new();
        for v in 0..4096u64 {
            pt.map(Vpn(v), Pte::new(Pfn(v), true));
        }
        let fp = pt.walk_present(|_, _| {});
        assert_eq!(fp.ptes_visited, 4096);
        assert_eq!(fp.leaf_tables, 8);
    }
}
