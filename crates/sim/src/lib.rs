//! # tmprof-sim — simulated machine substrate
//!
//! This crate is the hardware the rest of the `tmprof` reproduction runs
//! on: a deterministic, op-granular model of a multi-core x86-64 server
//! with tiered physical memory (DRAM + NVM), private L1/L2 and shared LLC
//! write-back caches, two-level TLBs, 4-level radix page tables (4 KiB and
//! 2 MiB THP mappings) walked by a hardware page-table walker that
//! maintains A/D bits, per-core IBS/PEBS-style trace-sampling engines
//! (with IBS counter randomization), PML engines, and PMU event counters.
//!
//! The paper this workspace reproduces — *Dancing in the Dark: Profiling
//! for Tiered Memory* — evaluates software profilers that read exactly this
//! hardware state. Everything observable by those profilers is produced
//! here as a side effect of executing ops, never synthesized; see each
//! module's docs for which paper mechanism it substitutes for.
//!
//! ## Quick tour
//!
//! ```
//! use tmprof_sim::prelude::*;
//!
//! // A 2-core machine with 64 fast + 256 slow frames, IBS period 64.
//! let mut m = Machine::new(MachineConfig::scaled(2, 64, 256, 64));
//! m.add_process(1);
//! m.trace_engine_mut(0).set_enabled(true);
//!
//! // Execute a load; the first touch faults, allocates in tier 1, walks
//! // the page table (setting the A bit), and misses the cold caches.
//! let out = m.touch(0, 1, VirtAddr(0x4000));
//! assert_eq!(out.tier, Some(Tier::Tier1));
//! assert_eq!(m.counts(0).ptw_abit_sets, 1);
//! ```

pub mod addr;
pub mod batch;
pub mod cache;
pub mod counters;
pub mod frame;
pub mod keymap;
pub mod machine;
pub mod pagedesc;
pub mod pagetable;
pub mod pml;
pub mod pte;
pub mod rng;
pub mod runner;
pub mod stats;
pub mod tier;
pub mod tlb;
pub mod trace_engine;

/// Convenient glob-import surface.
pub mod prelude {
    pub use crate::addr::{
        phys_addr, Pfn, PhysAddr, VirtAddr, Vpn, LINE_SIZE, PAGE_SHIFT, PAGE_SIZE,
    };
    pub use crate::cache::{Cache, CacheLevel, PrivateCaches};
    pub use crate::counters::EventCounts;
    pub use crate::keymap::{KeyMap, KeySet, PageSet};
    pub use crate::machine::{
        CacheProfile, ExecOutcome, FaultAction, FaultPolicy, LatencyConfig, Machine, MachineConfig,
        MigrateError, PoisonFault, WorkOp,
    };
    pub use crate::pagedesc::{PageDesc, PageDescTable, PageKey};
    pub use crate::pagetable::PageTable;
    pub use crate::pte::{bits as pte_bits, Pte};
    pub use crate::rng::{Rng, Zipf};
    pub use crate::runner::{OpStream, Runner, BATCH_ENV, DEFAULT_BATCH};
    pub use crate::stats::{EpochTruth, GroundTruth};
    pub use crate::tier::{FrameOutOfRange, MemTopology, Tier, TierSpec, TieredMemory};
    pub use crate::tlb::{Pid, Tlb, TlbHit};
    pub use crate::trace_engine::{TraceEngine, TraceMode, TraceSample};
}
