//! Memory-tier descriptors.
//!
//! The paper's TMA maps every byte-addressable technology into one physical
//! address space and splits it into tiers: tier 1 (DRAM: low latency, high
//! bandwidth) and tier 2 (NVM: denser, slower). We model the same split as a
//! static partition of the physical frame space into N *ordered* tiers —
//! frames `[0, t1_frames)` belong to tier 1, the next range to tier 2, and
//! so on — so a frame number alone identifies its tier, exactly as the
//! paper's placement mechanism identifies tiers by physical address ranges
//! (NUMA-node-style).
//!
//! [`MemTopology`] generalizes the paper's two-tier layout to an arbitrary
//! ordered list of [`TierSpec`]s (DRAM / CXL / NVM, per the NeoMem and
//! HM-Keeper lines of work): tier 0-indexed [`Tier`] ids, per-tier frame
//! counts and latencies, contiguous PFN ranges fastest-first. The historic
//! two-tier constructors ([`MemTopology::new`], [`MemTopology::with_frames`])
//! are retained unchanged so every default-scale experiment reproduces
//! byte-for-byte; `TieredMemory` remains as an alias for existing code.
//!
//! Zero-capacity tiers are well-defined: they own an empty PFN range, no
//! frame ever maps to them, and lookups simply skip them — a degenerate
//! single-tier topology is just `with_frames(n, 0)`.

use crate::addr::{Pfn, PAGE_SIZE};

/// Environment knob selecting the machine's tier layout (comma-separated
/// tier names, fastest first). Registered as `tmprof_core::knobs::TOPOLOGY`;
/// read here because `tmprof-sim` sits below `tmprof-core` (same layering
/// note as the runner's quantum knob).
pub const TOPOLOGY_ENV: &str = "TMPROF_TOPOLOGY";

/// Most tiers the env knob accepts (the named `Tier` ids go to `Tier4`).
pub const MAX_ENV_TIERS: usize = 4;

/// Which tier a physical frame lives in. Tiers are identified by their
/// 0-based position in the topology's fastest-first order: `Tier::Tier1`
/// is index 0 (DRAM), `Tier::Tier2` index 1, and deeper tiers follow.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tier(u8);

#[allow(non_upper_case_globals)]
impl Tier {
    /// Fast, small tier (DRAM) — topology index 0.
    pub const Tier1: Tier = Tier(0);
    /// Second tier (NVM in the paper's two-tier layout) — index 1.
    pub const Tier2: Tier = Tier(1);
    /// Third tier (e.g. NVM below a CXL middle tier) — index 2.
    pub const Tier3: Tier = Tier(2);
    /// Fourth tier — index 3.
    pub const Tier4: Tier = Tier(3);

    /// Index into per-tier arrays (0-based, fastest first).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Tier at a given 0-based topology index.
    #[inline]
    pub fn from_index(i: usize) -> Tier {
        Tier(i as u8)
    }

    /// Whether this is the fastest (capacity) tier.
    #[inline]
    pub fn is_fastest(self) -> bool {
        self.0 == 0
    }

    /// The next slower tier id (the waterfall-demotion destination).
    /// Purely arithmetic; whether that tier exists is the topology's call.
    #[inline]
    pub fn next_slower(self) -> Tier {
        Tier(self.0 + 1)
    }

    /// Lowercase label used in reports (`tier1`, `tier2`, …).
    pub fn label(self) -> String {
        format!("tier{}", self.0 as u32 + 1)
    }
}

impl std::fmt::Debug for Tier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Tier{}", self.0 as u32 + 1)
    }
}

/// Performance characteristics of one tier.
///
/// Latencies are in core cycles (the machine model charges them on an LLC
/// miss served from the tier). Defaults follow the common DRAM ≈ 80 ns,
/// Optane-like NVM ≈ 300 ns read / 100 ns buffered write picture at ~4 GHz —
/// the paper's premise that tier 2 is slower but *not* orders of magnitude
/// slower (§IV step 2, reason 2). The CXL preset sits between them
/// (≈ 170 ns load, a far-memory expander a hop away).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierSpec {
    /// Frames this tier provides.
    pub frames: u64,
    /// Cycles to serve a demand load.
    pub load_latency: u64,
    /// Cycles to absorb a store (write buffers hide part of it).
    pub store_latency: u64,
    /// Per-epoch bandwidth budget in bytes. Once the tier has served this
    /// many bytes within one epoch, every further access is surcharged
    /// with a second helping of its base latency — the queueing-delay knee
    /// of a saturated memory channel, collapsed to a step function.
    /// `None` (the default everywhere, including every preset) means
    /// infinite bandwidth: no byte accounting changes any latency, keeping
    /// all committed default-scale experiments byte-identical.
    pub epoch_bytes_budget: Option<u64>,
}

impl TierSpec {
    /// DRAM-like tier: ~80 ns @ 4 GHz both ways.
    pub fn dram(frames: u64) -> Self {
        Self {
            frames,
            load_latency: 320,
            store_latency: 320,
            epoch_bytes_budget: None,
        }
    }

    /// CXL-attached far memory: ~170 ns load / ~120 ns store.
    pub fn cxl(frames: u64) -> Self {
        Self {
            frames,
            load_latency: 680,
            store_latency: 480,
            epoch_bytes_budget: None,
        }
    }

    /// Optane-like NVM: ~300 ns load / ~100 ns buffered store.
    pub fn nvm(frames: u64) -> Self {
        Self {
            frames,
            load_latency: 1200,
            store_latency: 400,
            epoch_bytes_budget: None,
        }
    }

    /// Cap the tier's per-epoch bandwidth (bytes served before the
    /// saturation surcharge kicks in).
    pub fn with_epoch_bytes_budget(mut self, bytes: u64) -> Self {
        self.epoch_bytes_budget = Some(bytes);
        self
    }

    /// Spec for a named technology (`dram` | `cxl` | `nvm`), as used by the
    /// `TMPROF_TOPOLOGY` knob's comma-separated tier list.
    pub fn named(name: &str, frames: u64) -> Option<Self> {
        match name.trim().to_ascii_lowercase().as_str() {
            "dram" => Some(Self::dram(frames)),
            "cxl" => Some(Self::cxl(frames)),
            "nvm" => Some(Self::nvm(frames)),
            _ => None,
        }
    }
}

/// The machine's tiered physical memory layout: N ordered tiers, fastest
/// first, each owning a contiguous PFN range.
#[derive(Clone, Debug)]
pub struct MemTopology {
    specs: Vec<TierSpec>,
    /// `bounds[i]` = first PFN *past* tier i (cumulative frame counts).
    bounds: Vec<u64>,
}

/// Historic name for the two-tier layout; every constructor still works.
pub type TieredMemory = MemTopology;

/// Error returned by the checked tier lookup for a frame outside physical
/// memory (`pfn >= total_frames`, including the one-past-the-end PFN).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FrameOutOfRange {
    /// The offending frame.
    pub pfn: Pfn,
    /// Total frames in the topology.
    pub total_frames: u64,
}

impl std::fmt::Display for FrameOutOfRange {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "frame {:?} beyond physical memory ({} frames)",
            self.pfn, self.total_frames
        )
    }
}

impl std::error::Error for FrameOutOfRange {}

impl MemTopology {
    /// Build the paper's two-tier layout from per-tier specs. Either tier
    /// may be empty (a zero-capacity tier owns no frames).
    pub fn new(tier1: TierSpec, tier2: TierSpec) -> Self {
        Self::from_specs(vec![tier1, tier2])
    }

    /// Build a layout from an ordered (fastest-first) tier list.
    pub fn from_specs(specs: Vec<TierSpec>) -> Self {
        assert!(!specs.is_empty(), "topology needs at least one tier");
        let mut bounds = Vec::with_capacity(specs.len());
        let mut total: u64 = 0;
        for s in &specs {
            total += s.frames;
            bounds.push(total);
        }
        Self { specs, bounds }
    }

    /// A two-tier layout with the given frame counts and default DRAM/NVM
    /// latencies (the default every committed experiment runs under).
    pub fn with_frames(t1_frames: u64, t2_frames: u64) -> Self {
        Self::new(TierSpec::dram(t1_frames), TierSpec::nvm(t2_frames))
    }

    /// A layout from a `TMPROF_TOPOLOGY`-style comma-separated tier-name
    /// list (`"dram,cxl,nvm"`), one frame count per named tier. Returns
    /// `None` on an unknown name or a name/frame count mismatch.
    pub fn from_names(names: &str, frames: &[u64]) -> Option<Self> {
        let names: Vec<&str> = names.split(',').collect();
        if names.len() != frames.len() {
            return None;
        }
        let specs = names
            .iter()
            .zip(frames)
            .map(|(n, &f)| TierSpec::named(n, f))
            .collect::<Option<Vec<_>>>()?;
        Some(Self::from_specs(specs))
    }

    /// The scaled experiment layout, honoring the `TMPROF_TOPOLOGY` knob.
    ///
    /// Unset (or unparsable, or more than [`MAX_ENV_TIERS`] names) gives
    /// exactly [`MemTopology::with_frames`] — the default two-tier layout
    /// every committed experiment runs under. A named layout keeps the same
    /// total capacity and the same fast-tier size: the fastest tier gets
    /// `t1_frames`, and `t2_frames` is split evenly across the slower tiers
    /// (remainder to the slowest). A single-tier layout gets everything.
    pub fn scaled_from_env(t1_frames: u64, t2_frames: u64) -> Self {
        // tmprof-lint: allow(knob-flow) — sim reads the topology directly to avoid a dependency cycle with core's registry; the name is pinned by the knob-registry sync test
        std::env::var(TOPOLOGY_ENV)
            .ok()
            .and_then(|names| Self::scaled_named(&names, t1_frames, t2_frames))
            .unwrap_or_else(|| Self::with_frames(t1_frames, t2_frames))
    }

    /// The layout `scaled_from_env` builds for a given knob value: the
    /// fastest named tier gets `t1_frames`, the slower tiers split
    /// `t2_frames` evenly (remainder to the slowest); a single-tier layout
    /// gets everything. `None` on an unknown name or more than
    /// [`MAX_ENV_TIERS`] tiers.
    pub fn scaled_named(names: &str, t1_frames: u64, t2_frames: u64) -> Option<Self> {
        let n = names.split(',').count();
        if n > MAX_ENV_TIERS {
            return None;
        }
        let mut frames = Vec::with_capacity(n);
        if n == 1 {
            frames.push(t1_frames + t2_frames);
        } else {
            frames.push(t1_frames);
            let slow = n as u64 - 1;
            let share = t2_frames / slow;
            for i in 0..slow {
                frames.push(if i == slow - 1 {
                    t2_frames - share * (slow - 1)
                } else {
                    share
                });
            }
        }
        Self::from_names(names, &frames)
    }

    /// Number of tiers (including zero-capacity ones).
    #[inline]
    pub fn num_tiers(&self) -> usize {
        self.specs.len()
    }

    /// All tier ids, fastest first.
    pub fn tiers(&self) -> impl Iterator<Item = Tier> {
        (0..self.specs.len()).map(Tier::from_index)
    }

    /// The slowest tier id.
    #[inline]
    pub fn slowest(&self) -> Tier {
        Tier::from_index(self.specs.len() - 1)
    }

    /// Spec of one tier.
    #[inline]
    pub fn spec(&self, tier: Tier) -> &TierSpec {
        &self.specs[tier.index()]
    }

    /// Total frames across all tiers.
    pub fn total_frames(&self) -> u64 {
        *self.bounds.last().unwrap_or(&0)
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_frames() * PAGE_SIZE
    }

    /// First frame of the given tier's contiguous range. For an empty tier
    /// this equals the first frame of the next non-empty tier (the range is
    /// empty).
    pub fn first_frame(&self, tier: Tier) -> Pfn {
        let i = tier.index();
        if i == 0 {
            Pfn(0)
        } else {
            Pfn(self.bounds[i - 1])
        }
    }

    /// Which tier a frame belongs to, or an error for a frame outside
    /// physical memory (including `pfn == total_frames`, the one-past-the-
    /// end boundary). Empty tiers own no frames and are never returned.
    #[inline]
    pub fn try_tier_of(&self, pfn: Pfn) -> Result<Tier, FrameOutOfRange> {
        if pfn.0 >= self.total_frames() {
            return Err(FrameOutOfRange {
                pfn,
                total_frames: self.total_frames(),
            });
        }
        // First tier whose upper bound exceeds the frame. `bounds` is
        // non-decreasing; an empty tier repeats its predecessor's bound and
        // partition_point lands past it, so empty tiers are skipped.
        let i = self.bounds.partition_point(|&b| b <= pfn.0);
        Ok(Tier::from_index(i))
    }

    /// Which tier a frame belongs to.
    ///
    /// # Panics
    /// If the frame is outside physical memory; use [`Self::try_tier_of`]
    /// at boundaries where out-of-range frames are expected.
    #[inline]
    pub fn tier_of(&self, pfn: Pfn) -> Tier {
        match self.try_tier_of(pfn) {
            Ok(t) => t,
            // tmprof-lint: allow(panic-reachability) — hot-path variant of try_tier_of; callers pass frames the allocator handed out, and the checked form exists for boundary code
            Err(e) => panic!("{e}"),
        }
    }

    /// Load latency for an access served by the tier holding `pfn`.
    #[inline]
    pub fn load_latency(&self, pfn: Pfn) -> u64 {
        self.spec(self.tier_of(pfn)).load_latency
    }

    /// Store latency for an access absorbed by the tier holding `pfn`.
    #[inline]
    pub fn store_latency(&self, pfn: Pfn) -> u64 {
        self.spec(self.tier_of(pfn)).store_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_partition_is_contiguous() {
        let tm = TieredMemory::with_frames(100, 900);
        assert_eq!(tm.tier_of(Pfn(0)), Tier::Tier1);
        assert_eq!(tm.tier_of(Pfn(99)), Tier::Tier1);
        assert_eq!(tm.tier_of(Pfn(100)), Tier::Tier2);
        assert_eq!(tm.tier_of(Pfn(999)), Tier::Tier2);
        assert_eq!(tm.total_frames(), 1000);
    }

    #[test]
    #[should_panic(expected = "beyond physical memory")]
    fn out_of_range_frame_panics() {
        let tm = TieredMemory::with_frames(10, 10);
        tm.tier_of(Pfn(20));
    }

    #[test]
    fn one_past_the_end_is_a_typed_error_not_a_panic() {
        // Regression (tier-boundary sweep): pfn == total_frames is the
        // classic off-by-one; the checked lookup reports it instead of
        // crashing.
        let tm = TieredMemory::with_frames(10, 10);
        assert_eq!(tm.try_tier_of(Pfn(19)), Ok(Tier::Tier2));
        assert_eq!(
            tm.try_tier_of(Pfn(20)),
            Err(FrameOutOfRange {
                pfn: Pfn(20),
                total_frames: 20
            })
        );
        assert!(tm.try_tier_of(Pfn(21)).is_err());
        let msg = tm.try_tier_of(Pfn(20)).unwrap_err().to_string();
        assert!(msg.contains("beyond physical memory"), "{msg}");
    }

    #[test]
    fn empty_middle_tier_is_skipped() {
        // Regression (tier-boundary sweep): a zero-capacity middle tier
        // owns no frames; lookups at the seam resolve to its neighbors.
        let tm =
            MemTopology::from_specs(vec![TierSpec::dram(4), TierSpec::cxl(0), TierSpec::nvm(8)]);
        assert_eq!(tm.num_tiers(), 3);
        assert_eq!(tm.tier_of(Pfn(3)), Tier::Tier1);
        assert_eq!(tm.tier_of(Pfn(4)), Tier::Tier3, "empty CXL tier skipped");
        assert_eq!(tm.tier_of(Pfn(11)), Tier::Tier3);
        assert!(tm.try_tier_of(Pfn(12)).is_err());
        // The empty tier still has a well-defined (empty) range.
        assert_eq!(tm.first_frame(Tier::Tier2), Pfn(4));
        assert_eq!(tm.first_frame(Tier::Tier3), Pfn(4));
    }

    #[test]
    fn empty_fastest_tier_is_well_defined() {
        // Degenerate single-tier topology expressed as (0, n): every frame
        // resolves to tier 2 and nothing panics at construction.
        let tm = TieredMemory::with_frames(0, 16);
        assert_eq!(tm.tier_of(Pfn(0)), Tier::Tier2);
        assert_eq!(tm.tier_of(Pfn(15)), Tier::Tier2);
        assert_eq!(tm.total_frames(), 16);
        assert_eq!(tm.first_frame(Tier::Tier1), Pfn(0));
        assert_eq!(tm.first_frame(Tier::Tier2), Pfn(0));
    }

    #[test]
    fn tier2_loads_slower_than_tier1() {
        let tm = TieredMemory::with_frames(10, 10);
        assert!(tm.load_latency(Pfn(15)) > tm.load_latency(Pfn(5)));
    }

    #[test]
    fn nvm_is_slower_but_not_orders_of_magnitude() {
        // The paper's migration-cost argument depends on this ratio.
        let tm = TieredMemory::with_frames(10, 10);
        let ratio = tm.load_latency(Pfn(15)) as f64 / tm.load_latency(Pfn(5)) as f64;
        assert!(ratio > 1.5 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn first_frames() {
        let tm = TieredMemory::with_frames(64, 128);
        assert_eq!(tm.first_frame(Tier::Tier1), Pfn(0));
        assert_eq!(tm.first_frame(Tier::Tier2), Pfn(64));
    }

    #[test]
    fn total_bytes() {
        let tm = TieredMemory::with_frames(256, 0);
        assert_eq!(tm.total_bytes(), 1 << 20);
    }

    #[test]
    fn three_tier_ordering_is_monotone_in_latency_by_construction() {
        let tm =
            MemTopology::from_specs(vec![TierSpec::dram(4), TierSpec::cxl(4), TierSpec::nvm(4)]);
        assert_eq!(tm.tier_of(Pfn(5)), Tier::Tier2);
        assert_eq!(tm.tier_of(Pfn(9)), Tier::Tier3);
        assert!(tm.load_latency(Pfn(1)) < tm.load_latency(Pfn(5)));
        assert!(tm.load_latency(Pfn(5)) < tm.load_latency(Pfn(9)));
        let labels: Vec<String> = tm.tiers().map(|t| t.label()).collect();
        assert_eq!(labels, ["tier1", "tier2", "tier3"]);
        assert_eq!(tm.slowest(), Tier::Tier3);
        assert_eq!(format!("{:?}", Tier::Tier3), "Tier3");
    }

    #[test]
    fn default_two_tier_layout_matches_the_named_presets() {
        // with_frames is the layout all 28 committed CSVs ran under; pin it
        // to the presets so a preset tweak cannot silently drift them.
        let tm = TieredMemory::with_frames(7, 9);
        assert_eq!(*tm.spec(Tier::Tier1), TierSpec::dram(7));
        assert_eq!(*tm.spec(Tier::Tier2), TierSpec::nvm(9));
        assert_eq!(tm.spec(Tier::Tier1).load_latency, 320);
        assert_eq!(tm.spec(Tier::Tier2).load_latency, 1200);
        assert_eq!(tm.spec(Tier::Tier2).store_latency, 400);
    }

    #[test]
    fn named_topology_parsing() {
        let tm = MemTopology::from_names("dram,cxl,nvm", &[4, 8, 16]).unwrap();
        assert_eq!(tm.num_tiers(), 3);
        assert_eq!(tm.spec(Tier::Tier2).load_latency, 680);
        assert_eq!(tm.total_frames(), 28);
        assert!(MemTopology::from_names("dram,foo", &[1, 2]).is_none());
        assert!(MemTopology::from_names("dram,nvm", &[1]).is_none());
        assert!(TierSpec::named(" DRAM ", 3).is_some(), "trim + case-fold");
    }

    #[test]
    fn scaled_named_splits_slow_frames_and_keeps_totals() {
        // 3-tier: fast tier keeps its size, slow frames split evenly.
        let tm = MemTopology::scaled_named("dram,cxl,nvm", 64, 257).unwrap();
        assert_eq!(tm.num_tiers(), 3);
        assert_eq!(tm.spec(Tier::Tier1).frames, 64);
        assert_eq!(tm.spec(Tier::Tier2).frames, 128);
        assert_eq!(tm.spec(Tier::Tier3).frames, 129, "remainder to slowest");
        assert_eq!(tm.total_frames(), 64 + 257);
        // Single tier absorbs everything; the default stays the default.
        let one = MemTopology::scaled_named("dram", 64, 256).unwrap();
        assert_eq!(one.num_tiers(), 1);
        assert_eq!(one.total_frames(), 320);
        let two = MemTopology::scaled_named("dram,nvm", 10, 20).unwrap();
        assert_eq!(two.spec(Tier::Tier2).frames, 20);
        // Rejections: unknown names, too many tiers.
        assert!(MemTopology::scaled_named("dram,foo", 1, 2).is_none());
        assert!(MemTopology::scaled_named("dram,cxl,cxl,nvm,nvm", 8, 8).is_none());
    }

    #[test]
    fn tier_index_round_trip() {
        for i in 0..4 {
            assert_eq!(Tier::from_index(i).index(), i);
        }
        assert!(Tier::Tier1.is_fastest());
        assert!(!Tier::Tier2.is_fastest());
        assert_eq!(Tier::Tier1.next_slower(), Tier::Tier2);
        assert_eq!(Tier::Tier3.next_slower(), Tier::Tier4);
    }
}
