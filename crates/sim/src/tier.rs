//! Memory-tier descriptors.
//!
//! The paper's TMA maps every byte-addressable technology into one physical
//! address space and splits it into tiers: tier 1 (DRAM: low latency, high
//! bandwidth) and tier 2 (NVM: denser, slower). We model the same split as a
//! static partition of the physical frame space — frames `[0, t1_frames)`
//! belong to tier 1, the rest to tier 2 — so a frame number alone identifies
//! its tier, exactly as the paper's placement mechanism identifies tiers by
//! physical address ranges (NUMA-node-style).

use crate::addr::{Pfn, PAGE_SIZE};

/// Which tier a physical frame lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tier {
    /// Fast, small tier (DRAM).
    Tier1,
    /// Slow, large tier (NVM).
    Tier2,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 2] = [Tier::Tier1, Tier::Tier2];

    /// Index into per-tier arrays.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Tier::Tier1 => 0,
            Tier::Tier2 => 1,
        }
    }
}

/// Performance characteristics of one tier.
///
/// Latencies are in core cycles (the machine model charges them on an LLC
/// miss served from the tier). Defaults follow the common DRAM ≈ 80 ns,
/// Optane-like NVM ≈ 300 ns read / 100 ns buffered write picture at ~4 GHz —
/// the paper's premise that tier 2 is slower but *not* orders of magnitude
/// slower (§IV step 2, reason 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TierSpec {
    /// Frames this tier provides.
    pub frames: u64,
    /// Cycles to serve a demand load.
    pub load_latency: u64,
    /// Cycles to absorb a store (write buffers hide part of it).
    pub store_latency: u64,
}

/// The machine's tiered physical memory layout.
#[derive(Clone, Debug)]
pub struct TieredMemory {
    specs: [TierSpec; 2],
}

impl TieredMemory {
    /// Build a layout from per-tier specs.
    pub fn new(tier1: TierSpec, tier2: TierSpec) -> Self {
        assert!(tier1.frames > 0, "tier 1 must have capacity");
        Self {
            specs: [tier1, tier2],
        }
    }

    /// A layout with the given frame counts and default DRAM/NVM latencies.
    pub fn with_frames(t1_frames: u64, t2_frames: u64) -> Self {
        Self::new(
            TierSpec {
                frames: t1_frames,
                load_latency: 320, // ~80 ns @ 4 GHz
                store_latency: 320,
            },
            TierSpec {
                frames: t2_frames,
                load_latency: 1200, // ~300 ns
                store_latency: 400, // ~100 ns (write buffering)
            },
        )
    }

    /// Spec of one tier.
    #[inline]
    pub fn spec(&self, tier: Tier) -> &TierSpec {
        &self.specs[tier.index()]
    }

    /// Total frames across both tiers.
    // tmprof-lint: allow(panic-reachability) — specs is a fixed [TierSpec; 2]; indices 0 and 1 are always in bounds
    pub fn total_frames(&self) -> u64 {
        self.specs[0].frames + self.specs[1].frames
    }

    /// Total capacity in bytes.
    pub fn total_bytes(&self) -> u64 {
        self.total_frames() * PAGE_SIZE
    }

    /// First frame of the given tier's contiguous range.
    pub fn first_frame(&self, tier: Tier) -> Pfn {
        match tier {
            Tier::Tier1 => Pfn(0),
            Tier::Tier2 => Pfn(self.specs[0].frames),
        }
    }

    /// Which tier a frame belongs to.
    ///
    /// # Panics
    /// If the frame is outside physical memory.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — specs is a fixed [TierSpec; 2]; indices 0 and 1 are always in bounds
    pub fn tier_of(&self, pfn: Pfn) -> Tier {
        if pfn.0 < self.specs[0].frames {
            Tier::Tier1
        } else {
            assert!(
                pfn.0 < self.total_frames(),
                "frame {pfn:?} beyond physical memory"
            );
            Tier::Tier2
        }
    }

    /// Load latency for an access served by the tier holding `pfn`.
    #[inline]
    pub fn load_latency(&self, pfn: Pfn) -> u64 {
        self.spec(self.tier_of(pfn)).load_latency
    }

    /// Store latency for an access absorbed by the tier holding `pfn`.
    #[inline]
    pub fn store_latency(&self, pfn: Pfn) -> u64 {
        self.spec(self.tier_of(pfn)).store_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_partition_is_contiguous() {
        let tm = TieredMemory::with_frames(100, 900);
        assert_eq!(tm.tier_of(Pfn(0)), Tier::Tier1);
        assert_eq!(tm.tier_of(Pfn(99)), Tier::Tier1);
        assert_eq!(tm.tier_of(Pfn(100)), Tier::Tier2);
        assert_eq!(tm.tier_of(Pfn(999)), Tier::Tier2);
        assert_eq!(tm.total_frames(), 1000);
    }

    #[test]
    #[should_panic(expected = "beyond physical memory")]
    fn out_of_range_frame_panics() {
        let tm = TieredMemory::with_frames(10, 10);
        tm.tier_of(Pfn(20));
    }

    #[test]
    fn tier2_loads_slower_than_tier1() {
        let tm = TieredMemory::with_frames(10, 10);
        assert!(tm.load_latency(Pfn(15)) > tm.load_latency(Pfn(5)));
    }

    #[test]
    fn nvm_is_slower_but_not_orders_of_magnitude() {
        // The paper's migration-cost argument depends on this ratio.
        let tm = TieredMemory::with_frames(10, 10);
        let ratio = tm.load_latency(Pfn(15)) as f64 / tm.load_latency(Pfn(5)) as f64;
        assert!(ratio > 1.5 && ratio < 20.0, "ratio {ratio}");
    }

    #[test]
    fn first_frames() {
        let tm = TieredMemory::with_frames(64, 128);
        assert_eq!(tm.first_frame(Tier::Tier1), Pfn(0));
        assert_eq!(tm.first_frame(Tier::Tier2), Pfn(64));
    }

    #[test]
    fn total_bytes() {
        let tm = TieredMemory::with_frames(256, 0);
        assert_eq!(tm.total_bytes(), 1 << 20);
    }
}
