//! Per-core two-level TLB model.
//!
//! The TLB is where the paper's central A-bit subtlety lives: the hardware
//! page-table walker sets the PTE's A bit only when it *fills* a translation.
//! While a translation stays cached in the TLB, further accesses to the page
//! never touch the PTE — so after the profiler clears an A bit *without* a
//! shootdown, the bit stays stale until the entry is naturally evicted
//! (§III-B-4, optimization 3). This module reproduces that behaviour
//! structurally: A-bit updates happen only on fills, which only happen on
//! misses.
//!
//! The D bit is different (correctness, not performance): it is cached in
//! the TLB entry, and a store through a *clean* cached translation performs
//! a PTE write-back that sets the D bit even though no walk occurs (§II-B).
//!
//! Geometry defaults approximate a Zen2 core: 64-entry fully-associative L1
//! DTLB and a 2048-entry 16-way L2 STLB.

use crate::addr::{Pfn, Vpn};

/// Identifies a process address space (analogous to an ASID/PCID).
pub type Pid = u32;

/// Number of 4 KiB pages covered by a 2 MiB huge-page translation.
pub const HUGE_SPAN: u64 = 512;

/// A cached translation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TlbEntry {
    pub pid: Pid,
    /// For 4 KiB entries, the page; for huge entries, the 512-aligned base.
    pub vpn: Vpn,
    /// For huge entries, the first frame of the contiguous 512-frame run.
    pub pfn: Pfn,
    pub writable: bool,
    /// Cached dirty state: a store through a clean entry must write the PTE.
    pub dirty: bool,
    /// 2 MiB huge-page translation (one entry covers 512 pages).
    pub huge: bool,
}

impl TlbEntry {
    /// Frame backing `vpn`, resolving the huge-page offset if needed.
    #[inline]
    pub fn frame_for(&self, vpn: Vpn) -> Pfn {
        if self.huge {
            Pfn(self.pfn.0 + (vpn.0 - self.vpn.0))
        } else {
            self.pfn
        }
    }
}

#[derive(Clone, Copy)]
struct Slot {
    entry: TlbEntry,
    stamp: u64,
    valid: bool,
}

const INVALID_SLOT: Slot = Slot {
    entry: TlbEntry {
        pid: 0,
        vpn: Vpn(0),
        pfn: Pfn(0),
        writable: false,
        dirty: false,
        huge: false,
    },
    stamp: 0,
    valid: false,
};

/// One set-associative translation cache level with true-LRU replacement.
pub struct TlbLevel {
    sets: usize,
    ways: usize,
    slots: Vec<Slot>,
    clock: u64,
    /// Count of valid huge-page entries; lets [`Tlb::access`] skip the
    /// huge-tag probe entirely when no huge translation can possibly hit
    /// (the common non-THP case), halving lookup work per access.
    huge_entries: usize,
}

impl TlbLevel {
    /// Create a level with `sets * ways` entries. `sets` must be a power of
    /// two (1 set = fully associative).
    pub fn new(sets: usize, ways: usize) -> Self {
        assert!(sets.is_power_of_two(), "TLB sets must be a power of two");
        assert!(ways > 0);
        Self {
            sets,
            ways,
            slots: vec![INVALID_SLOT; sets * ways],
            clock: 0,
            huge_entries: 0,
        }
    }

    /// Whether any valid huge-page entry is cached.
    #[inline]
    pub fn holds_huge(&self) -> bool {
        self.huge_entries > 0
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_range(&self, pid: Pid, vpn: Vpn) -> std::ops::Range<usize> {
        // Mix the PID in so co-running processes do not alias set 0-heavy
        // layouts onto each other deterministically.
        let idx = ((vpn.0 ^ (pid as u64).wrapping_mul(0x9E37_79B9)) as usize) & (self.sets - 1);
        let start = idx * self.ways;
        start..start + self.ways
    }

    /// Probe for a translation; a hit refreshes LRU state.
    pub fn lookup(&mut self, pid: Pid, vpn: Vpn) -> Option<&mut TlbEntry> {
        self.lookup_slot(pid, vpn).map(|(_, e)| e)
    }

    /// [`TlbLevel::lookup`], additionally reporting the index of the slot
    /// that hit (fuel for the batched-execution translation memo).
    // tmprof-lint: allow(panic-reachability) — set_range slices a full set of `ways` slots within the slots array
    pub fn lookup_slot(&mut self, pid: Pid, vpn: Vpn) -> Option<(usize, &mut TlbEntry)> {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(pid, vpn);
        let base = range.start;
        let (i, slot) = self.slots[range]
            .iter_mut()
            .enumerate()
            .find(|(_, s)| s.valid && s.entry.pid == pid && s.entry.vpn == vpn)?;
        slot.stamp = clock;
        Some((base + i, &mut slot.entry))
    }

    /// Fast-path re-hit of a previously located slot. If `idx` still caches
    /// a 4 KiB translation for (`pid`, `vpn`) — and, for stores, one whose
    /// dirty bit is already cached — this replays *exactly* the state
    /// transition a [`TlbLevel::lookup`] hit performs (one clock tick, a
    /// stamp refresh) and returns a copy of the entry. Any mismatch returns
    /// `None` without touching the clock, so a subsequent full lookup sees
    /// the same LRU state the reference path would have.
    #[inline]
    // tmprof-lint: allow(panic-reachability) — idx was returned by a prior lookup_slot hit and is a valid slot index
    pub fn rehit(&mut self, idx: usize, pid: Pid, vpn: Vpn, is_store: bool) -> Option<TlbEntry> {
        let slot = &mut self.slots[idx];
        let e = &slot.entry;
        if slot.valid && e.pid == pid && e.vpn == vpn && !e.huge && (!is_store || e.dirty) {
            self.clock += 1;
            slot.stamp = self.clock;
            Some(slot.entry)
        } else {
            None
        }
    }

    /// Install a translation, evicting the set's LRU entry if needed.
    /// Returns the evicted entry, if one was displaced.
    pub fn insert(&mut self, entry: TlbEntry) -> Option<TlbEntry> {
        self.insert_slot(entry).1
    }

    /// [`TlbLevel::insert`], additionally reporting the slot index the entry
    /// was installed into. Entries never move between slots once installed,
    /// so the index stays valid until the entry is evicted or invalidated.
    ///
    /// A single pass over the set finds (in priority order) an existing
    /// mapping for the same page, the first invalid slot, and the LRU
    /// victim — the same selection the original three-scan version made.
    // tmprof-lint: allow(panic-reachability) — set_range slices a full set of `ways` slots; in-set offsets come from enumerate
    pub fn insert_slot(&mut self, entry: TlbEntry) -> (usize, Option<TlbEntry>) {
        self.clock += 1;
        let clock = self.clock;
        let range = self.set_range(entry.pid, entry.vpn);
        let base = range.start;
        let set = &mut self.slots[range];
        let mut invalid: Option<usize> = None;
        let mut lru = 0usize;
        let mut lru_stamp = u64::MAX;
        let mut same: Option<usize> = None;
        for (i, s) in set.iter().enumerate() {
            if s.valid {
                if s.entry.pid == entry.pid && s.entry.vpn == entry.vpn {
                    same = Some(i);
                    break;
                }
                if s.stamp < lru_stamp {
                    lru_stamp = s.stamp;
                    lru = i;
                }
            } else if invalid.is_none() {
                invalid = Some(i);
            }
        }
        if let Some(i) = same {
            self.huge_entries += entry.huge as usize;
            self.huge_entries -= set[i].entry.huge as usize;
            set[i] = Slot {
                entry,
                stamp: clock,
                valid: true,
            };
            return (base + i, None);
        }
        self.huge_entries += entry.huge as usize;
        if let Some(i) = invalid {
            set[i] = Slot {
                entry,
                stamp: clock,
                valid: true,
            };
            return (base + i, None);
        }
        let victim = &mut set[lru];
        debug_assert!(victim.valid, "ways > 0");
        let evicted = victim.entry;
        *victim = Slot {
            entry,
            stamp: clock,
            valid: true,
        };
        self.huge_entries -= evicted.huge as usize;
        (base + lru, Some(evicted))
    }

    /// Drop the translation for (`pid`, `vpn`) if cached. Returns whether an
    /// entry was present (shootdown accounting).
    // tmprof-lint: allow(panic-reachability) — set_range slices a full set of `ways` slots within the slots array
    pub fn invalidate_page(&mut self, pid: Pid, vpn: Vpn) -> bool {
        let range = self.set_range(pid, vpn);
        for slot in &mut self.slots[range] {
            if slot.valid && slot.entry.pid == pid && slot.entry.vpn == vpn {
                slot.valid = false;
                self.huge_entries -= slot.entry.huge as usize;
                return true;
            }
        }
        false
    }

    /// Drop every translation belonging to `pid` (full address-space flush,
    /// e.g. on context switch without PCID).
    pub fn flush_pid(&mut self, pid: Pid) -> usize {
        let mut n = 0;
        for slot in &mut self.slots {
            if slot.valid && slot.entry.pid == pid {
                slot.valid = false;
                self.huge_entries -= slot.entry.huge as usize;
                n += 1;
            }
        }
        n
    }

    /// Drop everything.
    pub fn flush_all(&mut self) {
        for slot in &mut self.slots {
            slot.valid = false;
        }
        self.huge_entries = 0;
    }

    /// Number of currently valid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }
}

/// Where a translation was found.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TlbHit {
    /// Hit in the first-level DTLB.
    L1,
    /// Missed L1, hit the second-level STLB (entry promoted to L1).
    L2,
    /// Missed both levels: a hardware page walk is required.
    Miss,
}

/// A two-level data TLB as seen by one core.
pub struct Tlb {
    pub l1: TlbLevel,
    pub l2: TlbLevel,
}

/// Result of a successful lookup.
#[derive(Clone, Copy, Debug)]
pub struct Translation {
    pub entry: TlbEntry,
    pub level: TlbHit,
    /// True if this access was a store through a clean cached entry, which
    /// forces a D-bit write-back to the PTE without a walk.
    pub needs_dirty_writeback: bool,
    /// L1 slot the entry occupies after this access (hit slot for L1 hits,
    /// promotion slot for L2 hits) — fuel for the translation memo.
    pub l1_slot: u32,
}

impl Tlb {
    /// Zen2-like default geometry.
    pub fn zen2() -> Self {
        Self {
            l1: TlbLevel::new(1, 64),
            l2: TlbLevel::new(128, 16),
        }
    }

    /// Custom geometry.
    pub fn new(l1: TlbLevel, l2: TlbLevel) -> Self {
        Self { l1, l2 }
    }

    /// Look up (`pid`, `vpn`) for a load (`is_store = false`) or store.
    ///
    /// Both the 4 KiB translation and (if present) the covering 2 MiB
    /// translation are probed, as in real split/unified TLBs. On an L2 hit
    /// the entry is promoted into L1. On a store through a clean entry the
    /// entry's cached dirty bit is set and `needs_dirty_writeback` is
    /// reported so the owner can update the PTE.
    pub fn access(&mut self, pid: Pid, vpn: Vpn, is_store: bool) -> Option<Translation> {
        // Probe the huge tag first; a hit short-circuits exactly like a 4K
        // hit. When neither level caches any huge translation the probe
        // cannot hit and is skipped outright (the common non-THP case).
        if self.l1.holds_huge() || self.l2.holds_huge() {
            let base = Vpn(vpn.0 & !(HUGE_SPAN - 1));
            if let Some(tr) = self.access_tag(pid, base, is_store, true) {
                return Some(tr);
            }
        }
        self.access_tag(pid, vpn, is_store, false)
    }

    /// Probe one tag (4K page or huge base) through both levels.
    fn access_tag(
        &mut self,
        pid: Pid,
        vpn: Vpn,
        is_store: bool,
        want_huge: bool,
    ) -> Option<Translation> {
        if let Some((slot, entry)) = self.l1.lookup_slot(pid, vpn) {
            if entry.huge != want_huge {
                return None;
            }
            let needs_wb = is_store && !entry.dirty;
            if is_store {
                entry.dirty = true;
            }
            let entry = *entry;
            // Keep L2 coherent about dirty state so a later L1 eviction and
            // L2 re-promotion does not repeat the write-back.
            if needs_wb {
                if let Some(l2e) = self.l2.lookup(pid, vpn) {
                    l2e.dirty = true;
                }
            }
            return Some(Translation {
                entry,
                level: TlbHit::L1,
                needs_dirty_writeback: needs_wb,
                l1_slot: slot as u32,
            });
        }
        if let Some(entry) = self.l2.lookup(pid, vpn) {
            if entry.huge != want_huge {
                return None;
            }
            let needs_wb = is_store && !entry.dirty;
            if is_store {
                entry.dirty = true;
            }
            let entry = *entry;
            let (slot, _) = self.l1.insert_slot(entry);
            return Some(Translation {
                entry,
                level: TlbHit::L2,
                needs_dirty_writeback: needs_wb,
                l1_slot: slot as u32,
            });
        }
        None
    }

    /// Install a freshly walked translation into both levels. Returns the
    /// L1 slot the entry landed in (translation-memo fuel).
    pub fn fill(&mut self, entry: TlbEntry) -> usize {
        self.l2.insert(entry);
        self.l1.insert_slot(entry).0
    }

    /// Batched-execution fast path: re-hit a previously located L1 slot.
    ///
    /// Succeeds only in the regime where it provably replays the reference
    /// [`Tlb::access`] bit-for-bit: no huge translation cached in either
    /// level (a huge entry would change the probe order and clock
    /// sequencing), the slot still caches (`pid`, `vpn`), and — for
    /// stores — the cached entry is already dirty (a clean-store needs the
    /// D-bit write-back path). Returns `None` with all TLB state untouched
    /// otherwise; the caller falls back to the reference path.
    #[inline]
    pub fn fast_rehit(
        &mut self,
        idx: usize,
        pid: Pid,
        vpn: Vpn,
        is_store: bool,
    ) -> Option<TlbEntry> {
        if self.l1.holds_huge() || self.l2.holds_huge() {
            return None;
        }
        self.l1.rehit(idx, pid, vpn, is_store)
    }

    /// Invalidate one page in both levels (the per-page half of a TLB
    /// shootdown). Also drops a huge translation covering the page, as
    /// `invlpg` does. Returns true if any level held a translation.
    pub fn invalidate_page(&mut self, pid: Pid, vpn: Vpn) -> bool {
        let a = self.l1.invalidate_page(pid, vpn);
        let b = self.l2.invalidate_page(pid, vpn);
        let base = Vpn(vpn.0 & !(HUGE_SPAN - 1));
        let c = base != vpn && {
            let c1 = self.l1.invalidate_page(pid, base);
            let c2 = self.l2.invalidate_page(pid, base);
            c1 || c2
        };
        a || b || c
    }

    /// Flush all translations of a process from both levels.
    pub fn flush_pid(&mut self, pid: Pid) -> usize {
        self.l1.flush_pid(pid) + self.l2.flush_pid(pid)
    }

    /// Flush everything (e.g. CR3 write without PCID).
    pub fn flush_all(&mut self) {
        self.l1.flush_all();
        self.l2.flush_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(pid: Pid, vpn: u64, pfn: u64) -> TlbEntry {
        TlbEntry {
            pid,
            vpn: Vpn(vpn),
            pfn: Pfn(pfn),
            writable: true,
            dirty: false,
            huge: false,
        }
    }

    #[test]
    fn miss_then_fill_then_hit() {
        let mut tlb = Tlb::zen2();
        assert!(tlb.access(1, Vpn(42), false).is_none());
        tlb.fill(entry(1, 42, 7));
        let t = tlb.access(1, Vpn(42), false).unwrap();
        assert_eq!(t.level, TlbHit::L1);
        assert_eq!(t.entry.pfn, Pfn(7));
    }

    #[test]
    fn pids_are_isolated() {
        let mut tlb = Tlb::zen2();
        tlb.fill(entry(1, 42, 7));
        assert!(tlb.access(2, Vpn(42), false).is_none());
    }

    #[test]
    fn lru_evicts_oldest_in_l1() {
        let mut l1 = TlbLevel::new(1, 2);
        l1.insert(entry(1, 1, 1));
        l1.insert(entry(1, 2, 2));
        // Touch vpn 1 so vpn 2 becomes LRU.
        assert!(l1.lookup(1, Vpn(1)).is_some());
        let evicted = l1.insert(entry(1, 3, 3)).unwrap();
        assert_eq!(evicted.vpn, Vpn(2));
        assert!(l1.lookup(1, Vpn(1)).is_some());
        assert!(l1.lookup(1, Vpn(2)).is_none());
        assert!(l1.lookup(1, Vpn(3)).is_some());
    }

    #[test]
    fn l1_eviction_still_hits_in_l2() {
        // Tiny L1, roomy L2: overflow of L1 must be caught by L2.
        let mut tlb = Tlb::new(TlbLevel::new(1, 2), TlbLevel::new(1, 64));
        for v in 0..10 {
            tlb.fill(entry(1, v, v));
        }
        let t = tlb.access(1, Vpn(0), false).unwrap();
        assert_eq!(t.level, TlbHit::L2);
        // Promotion: second access hits L1.
        let t = tlb.access(1, Vpn(0), false).unwrap();
        assert_eq!(t.level, TlbHit::L1);
    }

    #[test]
    fn store_through_clean_entry_requests_dirty_writeback_once() {
        let mut tlb = Tlb::zen2();
        tlb.fill(entry(1, 5, 9));
        let first = tlb.access(1, Vpn(5), true).unwrap();
        assert!(first.needs_dirty_writeback);
        let second = tlb.access(1, Vpn(5), true).unwrap();
        assert!(!second.needs_dirty_writeback, "dirty state must be cached");
    }

    #[test]
    fn load_never_requests_dirty_writeback() {
        let mut tlb = Tlb::zen2();
        tlb.fill(entry(1, 5, 9));
        let t = tlb.access(1, Vpn(5), false).unwrap();
        assert!(!t.needs_dirty_writeback);
    }

    #[test]
    fn dirty_state_survives_l1_eviction_via_l2() {
        let mut tlb = Tlb::new(TlbLevel::new(1, 1), TlbLevel::new(1, 64));
        tlb.fill(entry(1, 5, 9));
        assert!(tlb.access(1, Vpn(5), true).unwrap().needs_dirty_writeback);
        // Evict vpn 5 from the single-entry L1.
        tlb.fill(entry(1, 6, 10));
        // Re-promote from L2: must still be dirty, no second write-back.
        let t = tlb.access(1, Vpn(5), true).unwrap();
        assert_eq!(t.level, TlbHit::L2);
        assert!(!t.needs_dirty_writeback);
    }

    #[test]
    fn invalidate_page_removes_from_both_levels() {
        let mut tlb = Tlb::zen2();
        tlb.fill(entry(1, 8, 3));
        assert!(tlb.invalidate_page(1, Vpn(8)));
        assert!(tlb.access(1, Vpn(8), false).is_none());
        assert!(!tlb.invalidate_page(1, Vpn(8)));
    }

    #[test]
    fn flush_pid_only_hits_that_pid() {
        let mut tlb = Tlb::zen2();
        tlb.fill(entry(1, 1, 1));
        tlb.fill(entry(2, 2, 2));
        let n = tlb.flush_pid(1);
        assert_eq!(n, 2, "entry lives in both levels");
        assert!(tlb.access(1, Vpn(1), false).is_none());
        assert!(tlb.access(2, Vpn(2), false).is_some());
    }

    #[test]
    fn occupancy_tracks_valid_entries() {
        let mut l = TlbLevel::new(4, 4);
        assert_eq!(l.occupancy(), 0);
        for v in 0..8 {
            l.insert(entry(1, v, v));
        }
        assert_eq!(l.occupancy(), 8);
        l.flush_all();
        assert_eq!(l.occupancy(), 0);
    }

    #[test]
    fn huge_entry_covers_its_whole_span() {
        let mut tlb = Tlb::zen2();
        tlb.fill(TlbEntry {
            pid: 1,
            vpn: Vpn(512), // second 2 MiB region, aligned
            pfn: Pfn(4096),
            writable: true,
            dirty: false,
            huge: true,
        });
        // Any page in [512, 1024) hits through the one entry and resolves
        // to its offset frame.
        for off in [0u64, 1, 300, 511] {
            let t = tlb.access(1, Vpn(512 + off), false).expect("huge hit");
            assert!(t.entry.huge);
            assert_eq!(t.entry.frame_for(Vpn(512 + off)), Pfn(4096 + off));
        }
        // Pages outside the span miss.
        assert!(tlb.access(1, Vpn(511), false).is_none());
        assert!(tlb.access(1, Vpn(1024), false).is_none());
    }

    #[test]
    fn huge_and_4k_entries_do_not_alias() {
        let mut tlb = Tlb::zen2();
        // A 4K entry AT a huge-aligned vpn must not satisfy huge probes
        // for other pages in the region, and vice versa.
        tlb.fill(entry(1, 512, 7)); // 4K entry at the aligned address
        assert!(
            tlb.access(1, Vpn(513), false).is_none(),
            "4K entry must not cover neighbors"
        );
        let t = tlb.access(1, Vpn(512), false).unwrap();
        assert!(!t.entry.huge);
        assert_eq!(t.entry.frame_for(Vpn(512)), Pfn(7));
    }

    #[test]
    fn invalidating_any_covered_page_drops_huge_entry() {
        let mut tlb = Tlb::zen2();
        tlb.fill(TlbEntry {
            pid: 1,
            vpn: Vpn(0),
            pfn: Pfn(0),
            writable: true,
            dirty: false,
            huge: true,
        });
        assert!(tlb.invalidate_page(1, Vpn(300)));
        assert!(tlb.access(1, Vpn(300), false).is_none());
        assert!(tlb.access(1, Vpn(0), false).is_none());
    }

    #[test]
    fn store_through_huge_entry_requests_one_writeback() {
        let mut tlb = Tlb::zen2();
        tlb.fill(TlbEntry {
            pid: 1,
            vpn: Vpn(0),
            pfn: Pfn(0),
            writable: true,
            dirty: false,
            huge: true,
        });
        let first = tlb.access(1, Vpn(17), true).unwrap();
        assert!(first.needs_dirty_writeback);
        // Dirty state is cached region-wide.
        let second = tlb.access(1, Vpn(400), true).unwrap();
        assert!(!second.needs_dirty_writeback);
    }

    #[test]
    fn capacity_reported() {
        assert_eq!(Tlb::zen2().l1.capacity(), 64);
        assert_eq!(Tlb::zen2().l2.capacity(), 2048);
    }
}
