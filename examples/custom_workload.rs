//! Profile your own workload: implement `OpStream`, run it on the machine,
//! and inspect it through the `numa_maps`-style interface.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The workload here is a tiny in-memory B-tree-ish index: a hot root/
//! internal-node region probed on every lookup and a large leaf region
//! touched with Zipf skew. Anything that can produce a `WorkOp` stream can
//! be profiled the same way.

use tmprof_core::profiler::{Tmp, TmpConfig};
use tmprof_core::rank::RankSource;
use tmprof_core::report::{heat_concentration, numa_maps};
use tmprof_sim::prelude::*;

/// A hand-rolled workload: index lookups over a two-level structure.
struct IndexLookups {
    rng: Rng,
    zipf: Zipf,
    /// Hot internal nodes: 16 pages at VPN 0x100.
    internal_base: u64,
    /// Leaves: 2048 pages at VPN 0x10000.
    leaf_base: u64,
    step: u8,
    leaf_page: u64,
}

impl IndexLookups {
    fn new(seed: u64) -> Self {
        let mut rng = Rng::new(seed);
        let zipf = Zipf::new(2048, 0.9);
        let leaf_page = zipf.sample(&mut rng);
        Self {
            rng,
            zipf,
            internal_base: 0x100,
            leaf_base: 0x10000,
            step: 0,
            leaf_page,
        }
    }
}

impl OpStream for IndexLookups {
    fn next_op(&mut self) -> WorkOp {
        // Each lookup: root probe, internal probe, leaf read, then compute.
        let op = match self.step {
            0 => WorkOp::Mem {
                va: VirtAddr(self.internal_base << PAGE_SHIFT),
                store: false,
                site: 1,
            },
            1 => {
                let node = self.rng.below(16);
                WorkOp::Mem {
                    va: VirtAddr((self.internal_base + node) << PAGE_SHIFT),
                    store: false,
                    site: 2,
                }
            }
            2 => WorkOp::Mem {
                va: VirtAddr(((self.leaf_base + self.leaf_page) << PAGE_SHIFT) | 0x40),
                store: false,
                site: 3,
            },
            _ => {
                self.leaf_page = self.zipf.sample(&mut self.rng);
                self.step = 0;
                return WorkOp::Compute;
            }
        };
        self.step += 1;
        op
    }
}

fn main() {
    let mut machine = Machine::new(MachineConfig::scaled(1, 256, 4096, 256));
    machine.add_process(1);
    let mut workload = IndexLookups::new(42);
    let mut tmp = Tmp::new(TmpConfig::paper_defaults(256), &mut machine);

    let mut last = None;
    for _ in 0..3 {
        let streams: Vec<(Pid, &mut dyn OpStream)> = vec![(1, &mut workload)];
        Runner::new(streams).run(&mut machine, 200_000);
        last = Some(tmp.end_epoch(&mut machine));
    }
    let report = last.unwrap();

    println!("Hottest pages of the final epoch:");
    for r in report.profile.ranked(RankSource::Combined).iter().take(8) {
        let region = if r.key.vpn.0 < 0x10000 {
            "internal"
        } else {
            "leaf"
        };
        println!("  vpn {:#8x} ({region:<8}) rank {}", r.key.vpn.0, r.rank);
    }

    let concentration = heat_concentration(report.profile.trace.values().copied(), 0.10);
    println!(
        "\nTop 10% of sampled pages absorb {:.0}% of trace samples.",
        concentration * 100.0
    );

    // The /proc-style dump (truncated for the demo).
    let maps = numa_maps(&mut machine, 1);
    println!("\nnuma_maps-style snapshot (first 12 lines):");
    for line in maps.lines().take(12) {
        println!("  {line}");
    }
}
