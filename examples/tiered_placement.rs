//! End-to-end tiered placement on a consolidated server: first-touch vs
//! TMP-driven History.
//!
//! ```text
//! cargo run --release --example tiered_placement
//! ```
//!
//! The paper's motivating deployment is a cloud server consolidating
//! workloads with very different heat profiles. Here a streaming HPC job
//! (LULESH: touches its whole mesh once per sweep) and a hot-set service
//! (Web-Serving: a small set of session/template pages hammered on every
//! request) share a machine whose fast tier holds only a fraction of the
//! combined footprint.
//!
//! Under first-come-first-allocate, the streamer floods tier 1 with pages
//! it will barely reuse while the service's hot set spills to tier 2 and
//! stays there forever. TMP's combined profile ranks the service pages
//! hot, and the History policy promotes them — demoting the streamer's
//! cold mesh — which lifts the tier-1 hitrate epoch over epoch.

use tmprof_core::profiler::{Tmp, TmpConfig};
use tmprof_core::rank::RankSource;
use tmprof_policy::epoch::EpochRunner;
use tmprof_policy::mover::PageMover;
use tmprof_policy::policies::{FirstTouchPolicy, HistoryPolicy, PlacementPolicy};
use tmprof_sim::prelude::*;
use tmprof_workloads::spec::WorkloadKind;

const EPOCHS: u32 = 6;
const OPS_PER_EPOCH: u64 = 200_000;

fn run(policy_name: &str, policy: &mut dyn PlacementPolicy) -> Vec<f64> {
    // Two tenants, 4096 pages each; tier 1 holds 1/8 of the total.
    let streamer = WorkloadKind::Lulesh.default_config().with_processes(1);
    let service = WorkloadKind::WebServing.default_config().with_processes(1);
    let total = streamer.total_pages() + service.total_pages();
    let mut machine = Machine::new(MachineConfig::scaled(2, total / 8, total * 2, 512));

    machine.add_process(1);
    machine.add_process(2);
    let mut streamer_gen = streamer.spawn().remove(0);
    let mut service_gen = service.spawn().remove(0);

    let mut tmp = Tmp::new(TmpConfig::paper_defaults(512), &mut machine);
    let mut runner = EpochRunner::with_machine_capacity(&machine, PageMover::default());

    let mut hitrates = Vec::new();
    for _ in 0..EPOCHS {
        let mut streams: Vec<(Pid, &mut dyn OpStream)> =
            vec![(1, &mut *streamer_gen), (2, &mut *service_gen)];
        let metrics = runner.run_epoch(&mut machine, &mut tmp, policy, &mut streams, OPS_PER_EPOCH);
        hitrates.push(metrics.tier1_hitrate);
    }
    println!(
        "{policy_name:<22} steady-state hitrate {:>5.1}%  (pages promoted: {})",
        runner.steady_state_hitrate() * 100.0,
        runner
            .metrics()
            .iter()
            .map(|m| m.moves.promoted)
            .sum::<u64>(),
    );
    hitrates
}

fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    series
        .iter()
        .map(|&v| BARS[((v * 7.0).round() as usize).min(7)])
        .collect()
}

fn main() {
    println!(
        "LULESH (streaming) + Web-Serving (hot-set) consolidated on one\n\
         machine; tier 1 holds 1/8 of the combined footprint.\n"
    );
    let mut ft = FirstTouchPolicy;
    let base = run("first-touch baseline", &mut ft);
    let mut hist = HistoryPolicy::new(RankSource::Combined);
    let opt = run("TMP + History", &mut hist);

    println!(
        "\n        epoch:  {}",
        (0..EPOCHS)
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("")
    );
    println!("  first-touch:  {}", sparkline(&base));
    println!("  TMP+History:  {}", sparkline(&opt));
    println!(
        "\nThe History policy needs one epoch of profile before its first\n\
         placement; from epoch 1 on it keeps the service's session and\n\
         template pages in tier 1 while the mesh streams from tier 2\n\
         (paper §IV / Fig. 6)."
    );
}
