//! Compare the visibility of each profiling method on one workload.
//!
//! ```text
//! cargo run --release --example profiler_comparison [workload]
//! ```
//!
//! Runs the chosen workload (default: XSBench, the paper's asymmetry
//! showcase) three times — A-bit scanning only, IBS trace sampling only,
//! and both — and prints what each configuration could and could not see.
//! This is the paper's core argument in miniature: the translation path
//! and the cache-miss path observe *different* slices of the access
//! stream, so a profiler needs both.

use tmprof_bench::harness::{run_workload, ProfMode, RunOptions};
use tmprof_bench::scale::Scale;
use tmprof_bench::table::Table;
use tmprof_workloads::spec::WorkloadKind;

fn pick_workload(arg: Option<String>) -> WorkloadKind {
    let Some(name) = arg else {
        return WorkloadKind::XsBench;
    };
    let needle = name.to_lowercase().replace(['-', '_'], "");
    WorkloadKind::ALL
        .into_iter()
        .find(|k| k.name().to_lowercase().replace('-', "") == needle)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; options:");
            for k in WorkloadKind::ALL {
                eprintln!("  {}", k.name());
            }
            std::process::exit(2);
        })
}

fn main() {
    let kind = pick_workload(std::env::args().nth(1));
    let scale = Scale::quick();

    println!(
        "Profiling {} ({}, paper input: {})\n",
        kind.name(),
        kind.suite(),
        kind.paper_input()
    );

    let mut table = Table::new(vec![
        "configuration",
        "A-bit pages",
        "IBS pages",
        "both (same epoch)",
        "overhead cycles",
    ]);
    for (label, mode) in [
        ("A-bit only", ProfMode::ABitOnly),
        ("IBS only (4x)", ProfMode::TraceOnly),
        ("TMP (both)", ProfMode::Both),
    ] {
        let run = run_workload(kind, &RunOptions::new(scale).dense().with_mode(mode));
        let overhead = run.abit_stats.overhead_cycles + run.trace_stats.overhead_cycles;
        table.row(vec![
            label.to_string(),
            run.detection.abit.to_string(),
            run.detection.trace.to_string(),
            run.detection.both.to_string(),
            overhead.to_string(),
        ]);
    }
    print!("{}", table.render());
    println!(
        "\nReading: the A-bit scan is exact but budget-bounded (it plateaus on huge \
         footprints); IBS sees exactly what misses the LLC, wherever it lives. \
         TMP sums the two (Fig. 2 justifies the plain sum)."
    );
}
