//! Quickstart: profile a workload with TMP and print its hottest pages.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a small simulated tiered-memory machine, runs the GUPS workload
//! on it for a few epochs with the full TMP profiler (IBS-style trace
//! sampling + A-bit scanning + HWPC gating), and prints the per-epoch
//! detection statistics and the final hotness ranking.

use tmprof_core::profiler::{Tmp, TmpConfig};
use tmprof_sim::prelude::*;
use tmprof_workloads::spec::WorkloadKind;

fn main() {
    // A 2-core machine: 4 MiB of fast tier-1, 64 MiB of slow tier-2.
    let mut machine = Machine::new(MachineConfig::scaled(2, 1 << 10, 1 << 14, 1024));

    // Spawn the GUPS workload (uniform-random updates): one generator per
    // simulated process.
    let config = WorkloadKind::Gups.default_config().scaled_footprint(1, 8);
    let mut generators = config.spawn();
    let pids: Vec<Pid> = (1..=generators.len() as Pid).collect();
    for &pid in &pids {
        machine.add_process(pid);
    }

    // Arm TMP with paper-shaped defaults (IBS at 4x, budgeted A-bit scans,
    // process filtering, HWPC gating).
    let mut tmp = Tmp::new(TmpConfig::paper_defaults(1024), &mut machine);

    println!("epoch  A-bit pages  IBS pages  both  gate(trace/abit)");
    let mut last_report = None;
    for _ in 0..5 {
        // One "second" of execution per epoch.
        let streams: Vec<(Pid, &mut dyn OpStream)> = generators
            .iter_mut()
            .enumerate()
            .map(|(i, g)| (pids[i], &mut **g as &mut dyn OpStream))
            .collect();
        Runner::new(streams).run(&mut machine, 100_000);

        let report = tmp.end_epoch(&mut machine);
        println!(
            "{:>5}  {:>11}  {:>9}  {:>4}  {}/{}",
            report.epoch,
            report.abit_pages,
            report.trace_pages,
            report.both_pages,
            report.gate.trace_active,
            report.gate.abit_active,
        );
        last_report = Some(report);
    }

    // The policy-facing interface: pages ranked by combined hotness
    // (taken from the last epoch's profile snapshot).
    println!("\nTop 10 hottest pages of the final epoch (combined rank):");
    let profile = &last_report.expect("ran at least one epoch").profile;
    for (i, ranked) in profile
        .ranked(tmprof_core::rank::RankSource::Combined)
        .into_iter()
        .take(10)
        .enumerate()
    {
        println!(
            "  #{:<2} pid {} vpn {:#x}  rank {}",
            i + 1,
            ranked.key.pid,
            ranked.key.vpn.0,
            ranked.rank
        );
    }

    // Overall profiling cost, the paper's headline property.
    let counts = machine.aggregate_counts();
    println!(
        "\nProfiling overhead: {:.2}% of {} Mcycles  (IBS samples: {}, A-bit scans: {})",
        counts.profiling_overhead() * 100.0,
        counts.cycles / 1_000_000,
        tmp.trace_stats().counted_samples,
        tmp.abit_stats().scans,
    );
}
