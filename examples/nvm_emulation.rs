//! Drive the §VI-C NVM latency-emulation framework directly.
//!
//! ```text
//! cargo run --release --example nvm_emulation
//! ```
//!
//! Shows the BadgerTrap-based apparatus the paper built because it had no
//! real NVM: slow-region pages are periodically write-protected, and the
//! trap handler injects the calibrated latencies (10 µs per slow access
//! after a fault, +13 µs when the slow page is hot, 50 µs per migration).
//! The demo runs the Data-Caching workload under the first-touch baseline
//! and under TMP+History and prints where the time went.

use tmprof_core::profiler::TmpConfig;
use tmprof_emul::emulator::EmulConfig;
use tmprof_emul::experiment::{emulation_machine, run_emulated, speedup, EmulPolicy};
use tmprof_sim::prelude::*;
use tmprof_workloads::spec::WorkloadKind;

fn one_run(policy: EmulPolicy) -> tmprof_emul::EmulRunResult {
    // Fast : slow = 1 : 15, the paper's 4 GB : 60 GB split, scaled.
    let cfg = WorkloadKind::DataCaching
        .default_config()
        .scaled_footprint(1, 4);
    let total = cfg.total_pages();
    let t2 = total * 2;
    let t1 = (t2 / 15).max(64);
    let mut machine = emulation_machine(2, t1, t2, 512);
    let mut gens = cfg.spawn();
    let pids: Vec<Pid> = (1..=gens.len() as Pid).collect();
    for &pid in &pids {
        machine.add_process(pid);
    }
    let mut streams: Vec<(Pid, &mut dyn OpStream)> = gens
        .iter_mut()
        .enumerate()
        .map(|(i, g)| (pids[i], &mut **g as &mut dyn OpStream))
        .collect();
    run_emulated(
        &mut machine,
        &mut streams,
        policy,
        EmulConfig::default(),
        TmpConfig::paper_defaults(512),
        6,
        100_000,
    )
}

fn main() {
    let cfg = EmulConfig::default();
    println!(
        "NVM emulation constants (paper §VI-C): {} µs migration, {} µs slow \
         fault, +{} µs hot-in-slow\n",
        cfg.migration_us, cfg.slow_access_us, cfg.hot_penalty_us
    );

    let base = one_run(EmulPolicy::FirstTouch);
    let opt = one_run(EmulPolicy::TmpHistory);

    for (label, r) in [("first-touch baseline", &base), ("TMP + History", &opt)] {
        println!("{label}:");
        println!("  total cycles        {:>12}", r.cycles);
        println!("  slow-page faults    {:>12}", r.slow_faults);
        println!("  hot-in-slow faults  {:>12}", r.hot_faults);
        println!("  pages migrated      {:>12}", r.migrations);
        println!("  tier-1 hitrate      {:>11.1}%", r.tier1_hitrate * 100.0);
        println!();
    }
    println!(
        "Speedup: {:.3}x  (paper reports 1.04x average, 1.13x best case \
         across the full workload suite)",
        speedup(&base, &opt)
    );
}
