//! Offline stand-in for the `parking_lot` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! provides the subset of the `parking_lot` API the workspace uses —
//! `Mutex`/`RwLock` whose guards are obtained without a `Result` — by
//! wrapping the std primitives and swallowing poison (matching
//! parking_lot's no-poisoning semantics).

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// A mutex whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(StdMutex<T>);

impl<T> Mutex<T> {
    pub const fn new(value: T) -> Self {
        Self(StdMutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.0.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A reader-writer lock whose guards are obtained without a `Result`.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(StdRwLock<T>);

impl<T> RwLock<T> {
    pub const fn new(value: T) -> Self {
        Self(StdRwLock::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_roundtrip() {
        let l = RwLock::new(vec![1]);
        l.write().push(2);
        assert_eq!(l.read().len(), 2);
    }
}
