//! Deterministic RNG and per-test configuration.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// splitmix64-based generator; seeded from the test name and case index so
/// every run of the suite sees the identical case stream.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for case `case` of the test identified by `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test path, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        Self {
            state: h ^ ((case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// Explicit-seed constructor.
    pub fn from_seed(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift mapping avoids the worst modulo bias without a
        // rejection loop; fine for test-case generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform size in `[lo, hi)`.
    pub fn size_in(&mut self, lo: usize, hi: usize) -> usize {
        debug_assert!(hi > lo);
        lo + self.below((hi - lo) as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_and_case_reproduce() {
        let mut a = TestRng::for_case("t::x", 3);
        let mut b = TestRng::for_case("t::x", 3);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_stays_in_bounds() {
        let mut rng = TestRng::from_seed(7);
        for bound in [1u64, 2, 3, 1000, u64::MAX] {
            for _ in 0..64 {
                assert!(rng.below(bound) < bound);
            }
        }
    }
}
