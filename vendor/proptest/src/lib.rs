//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! reimplements the subset of the proptest API the workspace's tests use:
//! the `proptest!` macro (including `#![proptest_config(...)]`, `pat in
//! strategy` bindings and `name: Type` arbitrary bindings), range / tuple /
//! `Just` / `prop_oneof!` (optionally weighted) strategies, the
//! `prop::collection` and `prop::sample` constructors, and the
//! `prop_assert*` macros.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the raw generated input
//!   (via `Debug` in the assertion message) and the case index.
//! * **Deterministic seeds.** Case `i` of every test derives its RNG from a
//!   fixed splitmix64 chain, so failures reproduce bit-for-bit across runs
//!   and machines — the same determinism bar the rest of this repo holds.

pub mod strategy;
pub mod test_runner;

pub mod prop {
    //! The `prop::` namespace (collection and sample constructors).
    pub mod collection {
        pub use crate::strategy::collection::{btree_set, hash_map, hash_set, vec};
    }
    pub mod option {
        pub use crate::strategy::option::of;
    }
    pub mod sample {
        pub use crate::strategy::sample::select;
    }
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, Arbitrary, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

pub use strategy::{any, Arbitrary, Just, Strategy};
pub use test_runner::{ProptestConfig, TestRng};

/// Assert inside a `proptest!` body; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Union of strategies, optionally weighted (`weight => strategy`).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::boxed($strat))),+
        ])
    };
}

/// The `proptest!` test-definition macro.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@fns ($cfg) $($rest)*);
    };
    (@fns ($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($args:tt)*) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                for __case in 0..__cfg.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        concat!(module_path!(), "::", stringify!($name)),
                        __case,
                    );
                    let __run = std::panic::AssertUnwindSafe(|| {
                        $crate::__proptest_bind!(__rng; $($args)*);
                        $body
                    });
                    if let Err(panic) = std::panic::catch_unwind(__run) {
                        eprintln!(
                            "proptest case {__case}/{} of {} failed (deterministic seed; no shrinking)",
                            __cfg.cases,
                            stringify!($name),
                        );
                        std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@fns ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Internal: bind `proptest!` arguments (`pat in strategy` or `name: Type`).
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident;) => {};
    ($rng:ident; $name:ident in $strat:expr) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
    };
    ($rng:ident; $name:ident in $strat:expr, $($rest:tt)*) => {
        let $name = $crate::strategy::Strategy::generate(&($strat), &mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
    ($rng:ident; $name:ident : $ty:ty) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
    };
    ($rng:ident; $name:ident : $ty:ty, $($rest:tt)*) => {
        let $name = <$ty as $crate::strategy::Arbitrary>::arbitrary(&mut $rng);
        $crate::__proptest_bind!($rng; $($rest)*);
    };
}
