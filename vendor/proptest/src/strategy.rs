//! Strategy combinators: value generators driven by [`TestRng`].

use std::collections::{BTreeSet, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Reject values failing `pred` (regenerates; bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        whence: &'static str,
        pred: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            pred,
            whence,
        }
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `.prop_map` combinator.
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// `.prop_filter` combinator.
#[derive(Clone, Copy, Debug)]
pub struct Filter<S, F> {
    inner: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter '{}' rejected 1000 consecutive values",
            self.whence
        );
    }
}

// ---------- primitive ranges ----------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span as u64) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------- tuples ----------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);

// ---------- unions (prop_oneof!) ----------

/// Object-safe strategy wrapper for heterogeneous unions.
pub trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Wrap a strategy for use in a [`Union`]. Reference-counted so unions
/// stay cheaply cloneable (test code clones sub-strategies freely).
pub fn boxed<S: Strategy + 'static>(s: S) -> std::rc::Rc<dyn DynStrategy<S::Value>> {
    std::rc::Rc::new(s)
}

/// Weighted choice among same-valued strategies.
pub struct Union<V> {
    arms: Vec<(u32, std::rc::Rc<dyn DynStrategy<V>>)>,
    total: u64,
}

impl<V> Clone for Union<V> {
    fn clone(&self) -> Self {
        Self {
            arms: self.arms.clone(),
            total: self.total,
        }
    }
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, std::rc::Rc<dyn DynStrategy<V>>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Self { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.generate_dyn(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------- any / Arbitrary ----------

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// Strategy form of [`Arbitrary`] (`any::<T>()`).
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

// ---------- collections ----------

/// Element-count specification for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // exclusive
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        if self.hi <= self.lo + 1 {
            self.lo
        } else {
            rng.size_in(self.lo, self.hi)
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

pub mod collection {
    use super::*;

    /// `prop::collection::vec`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `prop::collection::hash_map`. Generic over the map's hasher so the
    /// value type can be inferred from the use site (e.g. a struct field
    /// using a non-default hasher).
    pub fn hash_map<K: Strategy, V: Strategy, S>(
        key: K,
        value: V,
        size: impl Into<SizeRange>,
    ) -> HashMapStrategy<K, V, S> {
        HashMapStrategy {
            key,
            value,
            size: size.into(),
            _hasher: PhantomData,
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct HashMapStrategy<K, V, S> {
        key: K,
        value: V,
        size: SizeRange,
        _hasher: PhantomData<S>,
    }

    impl<K, V, S> Strategy for HashMapStrategy<K, V, S>
    where
        K: Strategy,
        K::Value: Eq + Hash,
        V: Strategy,
        S: BuildHasher + Default,
    {
        type Value = HashMap<K::Value, V::Value, S>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashMap::with_capacity_and_hasher(n, S::default());
            // Duplicate keys shrink the map; retry a bounded number of
            // times so small key domains still terminate.
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 32 {
                attempts += 1;
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::hash_set`.
    pub fn hash_set<E: Strategy, S>(
        element: E,
        size: impl Into<SizeRange>,
    ) -> HashSetStrategy<E, S> {
        HashSetStrategy {
            element,
            size: size.into(),
            _hasher: PhantomData,
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct HashSetStrategy<E, S> {
        element: E,
        size: SizeRange,
        _hasher: PhantomData<S>,
    }

    impl<E, S> Strategy for HashSetStrategy<E, S>
    where
        E: Strategy,
        E::Value: Eq + Hash,
        S: BuildHasher + Default,
    {
        type Value = HashSet<E::Value, S>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = HashSet::with_capacity_and_hasher(n, S::default());
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 32 {
                attempts += 1;
                out.insert(self.element.generate(rng));
            }
            out
        }
    }

    /// `prop::collection::btree_set`.
    pub fn btree_set<E: Strategy>(element: E, size: impl Into<SizeRange>) -> BTreeSetStrategy<E> {
        BTreeSetStrategy {
            element,
            size: size.into(),
        }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct BTreeSetStrategy<E> {
        element: E,
        size: SizeRange,
    }

    impl<E> Strategy for BTreeSetStrategy<E>
    where
        E: Strategy,
        E::Value: Ord,
    {
        type Value = BTreeSet<E::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.size.pick(rng);
            let mut out = BTreeSet::new();
            let mut attempts = 0;
            while out.len() < n && attempts < n * 20 + 32 {
                attempts += 1;
                out.insert(self.element.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    use super::*;

    /// `prop::sample::select`: uniform choice from a non-empty vector.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select from empty set");
        Select { options }
    }

    #[derive(Clone, Debug)]
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// ---------- option ----------

pub mod option {
    use super::*;

    /// `prop::option::of`: `None` in roughly half the cases, otherwise
    /// `Some` of the inner strategy's value.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    #[derive(Clone, Copy, Debug)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(2) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        for _ in 0..256 {
            let v = (10u64..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let f = (0.5f64..1.5).generate(&mut rng);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn map_and_tuple_compose() {
        let mut rng = TestRng::from_seed(2);
        let s = (0u32..4, 5u64..6).prop_map(|(a, b)| a as u64 + b);
        for _ in 0..64 {
            let v = s.generate(&mut rng);
            assert!((5..9).contains(&v));
        }
    }

    #[test]
    fn union_respects_weights_roughly() {
        let mut rng = TestRng::from_seed(3);
        let u = crate::prop_oneof![9 => Just(1u8), 1 => Just(2u8)];
        let ones = (0..1000).filter(|_| u.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones}");
    }

    #[test]
    fn collections_hit_requested_sizes() {
        let mut rng = TestRng::from_seed(4);
        let v = collection::vec(0u64..100, 3..7).generate(&mut rng);
        assert!((3..7).contains(&v.len()));
        let m: HashMap<u64, u64> =
            collection::hash_map(0u64..1000, 0u64..5, 10..11).generate(&mut rng);
        assert_eq!(m.len(), 10);
        let s = collection::btree_set(0u64..1000, 5..6).generate(&mut rng);
        assert_eq!(s.len(), 5);
    }
}
