//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this vendored shim
//! implements the subset of the criterion API the workspace's benches use,
//! with real wall-clock measurement: per-benchmark warm-up, automatic
//! iteration-count calibration, and a median-of-samples report printed as
//!
//! ```text
//! group/id                time:   [1.2340 µs median, 1.2401 µs mean, N samples]
//! ```
//!
//! No plotting, no statistical regression, no saved baselines — comparisons
//! between runs are done by reading the printed medians.

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// How much per-iteration input setup costs relative to the routine.
/// The shim times the routine in isolation either way, so the variants
/// only exist for API compatibility.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Identifier `group/function/param` for parameterized benches.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name.
pub trait IntoBenchmarkId {
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Passed to the closure given to `bench_function`; drives measurement.
pub struct Bencher<'a> {
    samples: &'a mut Vec<Duration>,
    sample_count: usize,
    target_sample_time: Duration,
}

impl Bencher<'_> {
    /// Time `routine` called in a loop; the full loop body is measured.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration: find an iteration count whose batch
        // takes roughly `target_sample_time`.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.target_sample_time / 2 || iters >= 1 << 24 {
                break;
            }
            iters = iters.saturating_mul(if elapsed.is_zero() {
                16
            } else {
                let scale = self.target_sample_time.as_nanos() / elapsed.as_nanos().max(1);
                (scale as u64).clamp(2, 16)
            });
        }
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }

    /// Time `routine` over inputs built by `setup`; setup is excluded from
    /// the measurement.
    pub fn iter_batched<I, O, S: FnMut() -> I, R: FnMut(I) -> O>(
        &mut self,
        mut setup: S,
        mut routine: R,
        _size: BatchSize,
    ) {
        // Batched routines in this workspace are milliseconds-scale; one
        // timed call per sample keeps total runtime bounded.
        for _ in 0..self.sample_count.min(24) {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }
}

fn report(name: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        println!("{name:<40} time:   [no samples]");
        return;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
    println!(
        "{name:<40} time:   [{} median, {} mean, {} samples]",
        fmt_duration(median),
        fmt_duration(mean),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    sample_count: usize,
    target_sample_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_count: 40,
            target_sample_time: Duration::from_millis(8),
        }
    }
}

impl Criterion {
    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, mut f: F) {
        let name = id.into_id();
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count,
            target_sample_time: self.target_sample_time,
        });
        report(&name, &mut samples);
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: None,
        }
    }
}

/// Named group of related benchmarks; prints ids as `group/id`.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.max(2));
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let name = format!("{}/{}", self.name, id);
        let mut samples = Vec::new();
        f(&mut Bencher {
            samples: &mut samples,
            sample_count: self.sample_count.unwrap_or(self.criterion.sample_count),
            target_sample_time: self.criterion.target_sample_time,
        });
        report(&name, &mut samples);
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl IntoBenchmarkId, f: F) {
        self.run(id.into_id(), f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) {
        self.run(id.into_id(), |b| f(b, input));
    }

    pub fn finish(self) {}
}

/// Define a group-runner function from a list of bench functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` from a list of group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_produces_samples_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(4);
        let mut ran = 0u64;
        c.bench_function("noop", |b| b.iter(|| ran = ran.wrapping_add(1)));
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_excludes_setup() {
        let mut c = Criterion::default();
        c.sample_size(4);
        let mut group = c.benchmark_group("g");
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }
}
